package cluster

import (
	"fmt"
	"testing"
	"time"

	"github.com/p4lru/p4lru/internal/netproto"
)

func TestMembershipMergePrecedence(t *testing.T) {
	m := NewMembership("", "", "")
	m.Alive("a", "", "")

	// Equal incarnation: the graver status wins.
	if !m.Merge([]netproto.MemberDigest{{ID: "a", Status: netproto.MemberSuspect, Incarnation: 0}}) {
		t.Fatal("suspect at equal incarnation not adopted")
	}
	if s, _ := m.Status("a"); s != netproto.MemberSuspect {
		t.Fatalf("status = %d, want suspect", s)
	}
	// A stale alive at the same incarnation loses to the accusation.
	if m.Merge([]netproto.MemberDigest{{ID: "a", Status: netproto.MemberAlive, Incarnation: 0}}) {
		t.Fatal("stale alive at the accused incarnation was adopted")
	}
	// A higher incarnation wins outright, even downgrading the status.
	if !m.Merge([]netproto.MemberDigest{{ID: "a", Status: netproto.MemberAlive, Incarnation: 1}}) {
		t.Fatal("refutation at a higher incarnation not adopted")
	}
	if s, _ := m.Status("a"); s != netproto.MemberAlive {
		t.Fatalf("status after refutation = %d, want alive", s)
	}
	// Dead outranks suspect at the same incarnation; Left outranks dead.
	m.Merge([]netproto.MemberDigest{{ID: "a", Status: netproto.MemberDead, Incarnation: 1}})
	if m.Suspect("a") {
		t.Fatal("Suspect downgraded a dead verdict")
	}
	if !m.Left("a") {
		t.Fatal("Left did not outrank dead")
	}
}

func TestMembershipSelfRefutation(t *testing.T) {
	m := NewMembership("self", "u:1", "t:1")
	// An accusation against self is never adopted — it is out-bid.
	m.Merge([]netproto.MemberDigest{{ID: "self", Status: netproto.MemberDead, Incarnation: 5}})
	for _, d := range m.Entries() {
		if d.ID != "self" {
			continue
		}
		if d.Status != netproto.MemberAlive {
			t.Fatalf("self status = %d after accusation, want alive", d.Status)
		}
		if d.Incarnation != 6 {
			t.Fatalf("self incarnation = %d, want 6 (accusation+1)", d.Incarnation)
		}
	}
	// The refutation now beats the accusation in any peer's table.
	peer := NewMembership("", "", "")
	peer.Merge([]netproto.MemberDigest{{ID: "self", Status: netproto.MemberDead, Incarnation: 5}})
	peer.Merge(m.Digest())
	if s, _ := peer.Status("self"); s != netproto.MemberAlive {
		t.Fatalf("peer adopted stale death over refutation: status %d", s)
	}
}

func TestMembershipAliveRevivesWithBump(t *testing.T) {
	m := NewMembership("", "", "")
	m.Alive("a", "", "")
	m.Confirm("a")
	m.Alive("a", "udp", "tcp") // operator re-join: bump past the death
	for _, d := range m.Entries() {
		if d.Status != netproto.MemberAlive || d.Incarnation != 1 {
			t.Fatalf("revived entry = %+v, want alive at incarnation 1", d)
		}
		if d.UDPAddr != "udp" || d.TCPAddr != "tcp" {
			t.Fatalf("addresses not adopted on revive: %+v", d)
		}
	}
}

func TestMembershipExchangeConverges(t *testing.T) {
	// Three tables with disjoint knowledge converge through pairwise
	// exchanges regardless of order.
	a, b, c := NewMembership("a", "", ""), NewMembership("b", "", ""), NewMembership("c", "", "")
	b.Merge(a.Exchange(b.Digest())) // a<->b
	c.Merge(b.Exchange(c.Digest())) // b<->c
	a.Merge(c.Exchange(a.Digest())) // c<->a
	for name, m := range map[string]*Membership{"a": a, "b": b, "c": c} {
		if got := len(m.Entries()); got != 3 {
			t.Fatalf("table %s has %d entries after full exchange cycle, want 3", name, got)
		}
	}
}

func TestMembershipDigestBounded(t *testing.T) {
	m := NewMembership("", "", "")
	for i := 0; i < netproto.MaxGossipEntries*2; i++ {
		m.Alive(fmt.Sprintf("node-%03d", i), "", "")
	}
	d := m.Digest()
	if len(d) != netproto.MaxGossipEntries {
		t.Fatalf("digest carries %d entries, want cap %d", len(d), netproto.MaxGossipEntries)
	}
	// Freshest first: the most recently changed member leads the digest.
	m.Suspect("node-000")
	if d = m.Digest(); d[0].ID != "node-000" || d[0].Status != netproto.MemberSuspect {
		t.Fatalf("digest head = %+v, want the freshest change (node-000 suspect)", d[0])
	}
}

func TestMembershipSuspectTimer(t *testing.T) {
	m := NewMembership("", "", "")
	m.Alive("a", "", "")
	if d := m.SuspectedFor("a"); d != 0 {
		t.Fatalf("alive member suspected for %v, want 0", d)
	}
	m.Suspect("a")
	time.Sleep(5 * time.Millisecond)
	if d := m.SuspectedFor("a"); d <= 0 {
		t.Fatalf("SuspectedFor = %v after suspicion, want > 0", d)
	}
	v := m.Version()
	m.Suspect("a") // idempotent: no change, no version bump
	if m.Version() != v {
		t.Fatal("repeated Suspect bumped the table version")
	}
}
