package cluster

import (
	"errors"
	"testing"
	"time"

	"github.com/p4lru/p4lru/internal/netproto"
	"github.com/p4lru/p4lru/internal/resilience"
)

// keyOwnedBy finds a key the given member owns under r's current ring.
func keyOwnedBy(t *testing.T, r *Router, id string, from uint64) uint64 {
	t.Helper()
	for k := from; k < from+100000; k++ {
		if r.Ring().Owner(k) == id {
			return k
		}
	}
	t.Fatalf("no key owned by %s in 100k probes", id)
	return 0
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out after %v waiting for %s", d, what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestHintLogParkDedupeEvict(t *testing.T) {
	h := newHintLog(3)
	for i, kv := range [][2]uint64{{1, 10}, {2, 20}, {3, 30}} {
		if h.park("a", kv[0], kv[1]) {
			t.Fatalf("park #%d evicted below capacity", i)
		}
	}
	// Re-parking a known key updates in place — no eviction, no growth.
	if h.park("a", 2, 21) {
		t.Fatal("duplicate key park evicted")
	}
	if got := h.pendingFor("a"); got != 3 {
		t.Fatalf("pendingFor = %d, want 3", got)
	}
	// A fourth distinct key evicts the oldest (key 1).
	if !h.park("a", 4, 40) {
		t.Fatal("park at capacity did not evict")
	}
	got := h.take("a")
	want := map[uint64]uint64{2: 21, 3: 30, 4: 40}
	if len(got) != len(want) {
		t.Fatalf("take = %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("take[%d] = %d, want %d", k, got[k], v)
		}
	}
	if h.take("a") != nil || h.pending() != 0 {
		t.Fatal("take did not drain the log")
	}
}

func TestPushPairsSynthesizedReplay(t *testing.T) {
	p := NewLocalPeer(newTestEngine(t), testSeed)
	// Pre-install one key: keep-existing replay must not roll it back.
	if err := p.Update(5, 555); err != nil {
		t.Fatal(err)
	}
	n, err := pushPairs(p, map[uint64]uint64{5: 50, 6: 60, 7: 70})
	if err != nil {
		t.Fatalf("pushPairs: %v", err)
	}
	if n != 2 {
		t.Fatalf("installed %d pairs, want 2 (key 5 already resident)", n)
	}
	if v, _, ok := p.eng.Query(5); !ok || v != 555 {
		t.Fatalf("resident key rolled back to %d by hint replay", v)
	}
	for k, want := range map[uint64]uint64{6: 60, 7: 70} {
		if v, _, ok := p.eng.Query(k); !ok || v != want {
			t.Fatalf("replayed key %d = (%d, %v), want %d", k, v, ok, want)
		}
	}
}

// TestUpdateParksHintAndReplaysOnRecovery: updates to a dead owner return
// ErrHinted instead of failing outright, and the parked writes replay when
// the owner's breaker closes again.
func TestUpdateParksHintAndReplaysOnRecovery(t *testing.T) {
	r, peers := newTestCluster(t, 2, Config{
		Breaker: resilience.BreakerConfig{
			ConsecutiveFailures: 1,
			OpenFor:             20 * time.Millisecond,
			HalfOpenProbes:      1,
		},
	})
	const victim = "node-0"
	k1 := keyOwnedBy(t, r, victim, 1)
	k2 := keyOwnedBy(t, r, victim, k1+1)

	peers[victim].Kill()
	if err := r.Update(k1, 100); !errors.Is(err, ErrHinted) {
		t.Fatalf("Update to dead owner = %v, want ErrHinted", err)
	}
	// The breaker is open now; the rejection is hinted too.
	if err := r.Update(k2, 200); !errors.Is(err, ErrHinted) {
		t.Fatalf("Update behind open breaker = %v, want ErrHinted", err)
	}
	if got := r.hints.pendingFor(victim); got != 2 {
		t.Fatalf("%d hints parked, want 2", got)
	}

	peers[victim].Revive()
	time.Sleep(25 * time.Millisecond) // let the cool-down lapse
	// Queries probe the half-open breaker; a success closes it, and the
	// recovery edge replays the hints in the background.
	waitFor(t, 2*time.Second, "hint replay after recovery", func() bool {
		_, _, _ = r.Query(k1)
		v1, _, ok1 := peers[victim].eng.Query(k1)
		v2, _, ok2 := peers[victim].eng.Query(k2)
		return ok1 && v1 == 100 && ok2 && v2 == 200
	})
	if got := r.hints.pendingFor(victim); got != 0 {
		t.Fatalf("%d hints still parked after replay", got)
	}
}

// TestReadRepairHealsMissingReplica: a hot key present at its owner but
// absent at a replica is observed divergent by the fan read and re-filled
// through the repair queue.
func TestReadRepairHealsMissingReplica(t *testing.T) {
	r, peers := newTestCluster(t, 3, Config{
		Replicas:   2,
		HotK:       8,
		RepairRate: 100000, // drain instantly; the rate is not under test
	})
	const key = uint64(12345)
	// Install while cold: only the owner holds the key.
	if err := r.Update(key, 777); err != nil {
		t.Fatal(err)
	}
	// Make it hot, then force a publish so the fan path engages.
	for i := 0; i < 4096; i++ {
		r.hot.Touch(key)
	}
	r.hot.Publish()
	if !r.hot.Hot(key) {
		t.Fatal("key did not reach the published hot set")
	}
	st := r.state.Load()
	ids := st.ring.ReplicasAt(st.ring.Pos(key), 2)
	replica := peers[ids[1]]
	if _, _, ok := replica.eng.Query(key); ok {
		t.Fatal("replica already holds the key; divergence scenario void")
	}
	// Fan reads rotate the probe order; repeated queries must eventually
	// observe replica-miss-then-owner-hit and enqueue the repair.
	waitFor(t, 2*time.Second, "read repair to fill the replica", func() bool {
		if v, ok, err := r.Query(key); err != nil || !ok || v != 777 {
			t.Fatalf("Query(%d) = (%d, %v, %v)", key, v, ok, err)
		}
		v, _, ok := replica.eng.Query(key)
		return ok && v == 777
	})
}

// TestSweepRepairsValueDivergence: a replica holding a *stale value* answers
// hits, so the read path never sees the divergence — the arc-digest sweep
// must catch it and re-fill the replica from the owner.
func TestSweepRepairsValueDivergence(t *testing.T) {
	r, peers := newTestCluster(t, 3, Config{
		Replicas:         2,
		HotK:             8,
		RepairRate:       100000,
		RepairSweepEvery: -1, // driven by hand for determinism
	})
	const key = uint64(54321)
	for i := 0; i < 4096; i++ {
		r.hot.Touch(key)
	}
	r.hot.Publish()
	if !r.hot.Hot(key) {
		t.Fatal("key did not reach the published hot set")
	}
	// Hot update fans to owner and replica.
	if err := r.Update(key, 1000); err != nil {
		t.Fatal(err)
	}
	st := r.state.Load()
	ids := st.ring.ReplicasAt(st.ring.Pos(key), 2)
	owner, replica := peers[ids[0]], peers[ids[1]]
	if v, _, ok := replica.eng.Query(key); !ok || v != 1000 {
		t.Fatalf("replica = (%d, %v) after hot update, want 1000", v, ok)
	}
	// Diverge the replica behind the router's back.
	if err := replica.Update(key, 31337); err != nil {
		t.Fatal(err)
	}
	r.sweepOnce()
	waitFor(t, 2*time.Second, "sweep-triggered repair", func() bool {
		v, _, ok := replica.eng.Query(key)
		return ok && v == 1000
	})
	if v, _, ok := owner.eng.Query(key); !ok || v != 1000 {
		t.Fatalf("owner disturbed by repair: (%d, %v)", v, ok)
	}
}

// TestDegradedModeShedsRemoteMisses: with the majority of peers behind open
// breakers the router enters degraded mode, serving local arcs normally but
// shedding GetOrLoad misses caused by unreachable owners.
func TestDegradedModeShedsRemoteMisses(t *testing.T) {
	r, peers := newTestCluster(t, 3, Config{
		Breaker: resilience.BreakerConfig{
			ConsecutiveFailures: 1,
			OpenFor:             50 * time.Millisecond,
			HalfOpenProbes:      1,
		},
	})
	// Cut links to two of three nodes and trip their breakers.
	cut := []string{"node-1", "node-2"}
	for _, id := range cut {
		peers[id].CutLink()
		k := keyOwnedBy(t, r, id, 1)
		if _, _, err := r.Query(k); err == nil {
			t.Fatalf("query to cut peer %s succeeded", id)
		}
	}
	r.refreshDegraded()
	if !r.Degraded() {
		t.Fatal("router not degraded with 2/3 peers unreachable")
	}

	// A remote miss is shed without consulting the loader.
	loads := 0
	load := func(k uint64) (uint64, error) { loads++; return k, nil }
	remote := keyOwnedBy(t, r, "node-1", 1)
	if _, err := r.GetOrLoad(remote, load); !errors.Is(err, ErrDegraded) {
		t.Fatalf("remote miss while degraded = %v, want ErrDegraded", err)
	}
	if loads != 0 {
		t.Fatal("loader consulted for a shed remote miss")
	}
	// Local arcs keep full service, including miss loads.
	local := keyOwnedBy(t, r, "node-0", 1)
	if v, err := r.GetOrLoad(local, load); err != nil || v != local || loads != 1 {
		t.Fatalf("local miss while degraded = (%d, %v), loads=%d", v, err, loads)
	}

	// Heal: links restored, half-open probes re-prove the peers, mode clears.
	for _, id := range cut {
		peers[id].HealLink()
	}
	waitFor(t, 2*time.Second, "breakers to close after heal", func() bool {
		for _, id := range cut {
			_, _, _ = r.Query(keyOwnedBy(t, r, id, 1)) // probe
			if r.gate.Peer(id).State() != resilience.Closed {
				return false
			}
		}
		return true
	})
	r.refreshDegraded()
	if r.Degraded() {
		t.Fatal("router still degraded after heal")
	}
	if _, err := r.GetOrLoad(remote, load); err != nil {
		t.Fatalf("remote load after heal: %v", err)
	}
}

// TestGossipBootstrapFromSingleSeed: a router configured with gossip joins
// ONE seed node and learns the other members from the seed's membership
// table, resolving and joining them without any explicit Join calls.
func TestGossipBootstrapFromSingleSeed(t *testing.T) {
	ids := []string{"node-0", "node-1", "node-2"}
	peers := map[string]*LocalPeer{}
	for _, id := range ids {
		p := NewLocalPeer(newTestEngine(t), testSeed)
		p.AttachMembership(NewMembership(id, "", ""))
		peers[id] = p
	}
	// The nodes already know each other (their own gossip mesh converged).
	for _, id := range ids {
		for _, other := range ids {
			if other != id {
				peers[id].Membership().Alive(other, "", "")
			}
		}
	}
	r := New(Config{
		Seed:           testSeed,
		Gossip:         true,
		HeartbeatEvery: 10 * time.Millisecond,
		Resolver: func(d netproto.MemberDigest) (Peer, error) {
			if p := peers[d.ID]; p != nil {
				return p, nil
			}
			return nil, nil
		},
	})
	defer r.Close()
	if err := r.Join("node-0", peers["node-0"]); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "gossip to assemble the full ring", func() bool {
		return len(r.Members()) == 3
	})
	for _, id := range ids {
		if !containsStr(r.Members(), id) {
			t.Fatalf("member %s missing after bootstrap: %v", id, r.Members())
		}
	}
}
