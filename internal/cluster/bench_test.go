package cluster

import (
	"testing"
	"time"

	"github.com/p4lru/p4lru/internal/engine"
	"github.com/p4lru/p4lru/internal/policy"
)

// BenchmarkClusterRouter prices the router's veneer over a single engine:
// path=single queries the engine directly, path=local routes the same hits
// through a one-node router (ring lookup, hot-key touch, breaker liveness
// check, LocalPeer hop). The bench gate holds the local-owner overhead to
// ≤1.3× the bare engine.
func BenchmarkClusterRouter(b *testing.B) {
	const keys = 4096
	newFilled := func(b *testing.B) *engine.Engine {
		b.Helper()
		e, err := engine.NewFromSpec(
			policy.Spec{Kind: policy.KindP4LRU3, MemBytes: 1 << 20, Seed: 9},
			engine.Config{Shards: 4, Block: true},
		)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(e.Close)
		for k := uint64(1); k <= keys; k++ {
			e.Apply(engine.Op{Key: k, Value: k})
		}
		return e
	}
	// Bench over keys that are actually resident so both paths measure the
	// hit path, not miss handling.
	resident := func(e *engine.Engine) []uint64 {
		var out []uint64
		e.Range(func(k, v uint64) bool {
			out = append(out, k)
			return true
		})
		if len(out) == 0 {
			b.Fatal("no resident keys")
		}
		return out
	}

	b.Run("path=single", func(b *testing.B) {
		e := newFilled(b)
		res := resident(e)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.Query(res[i%len(res)])
		}
	})

	b.Run("path=local", func(b *testing.B) {
		e := newFilled(b)
		res := resident(e)
		r := New(Config{Seed: testSeed, HeartbeatEvery: -1})
		defer r.Close()
		if err := r.Join("node-0", NewLocalPeer(e, testSeed)); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Query(res[i%len(res)])
		}
	})

	// path=selfheal is path=local with the whole self-healing stack armed:
	// gossip membership live on the heartbeat plane, the read-repair queue
	// and arc-digest sweeper running, hinted handoff enabled. The gate holds
	// the local-owner fast path to the same ≤1.3× / zero-alloc bar — the
	// robustness machinery must price in at nothing on the hit path.
	b.Run("path=selfheal", func(b *testing.B) {
		e := newFilled(b)
		res := resident(e)
		lp := NewLocalPeer(e, testSeed)
		lp.AttachMembership(NewMembership("node-0", "", ""))
		r := New(Config{
			Seed:             testSeed,
			Gossip:           true,
			HotK:             64,
			HeartbeatEvery:   25 * time.Millisecond,
			RepairRate:       128,
			RepairSweepEvery: 50 * time.Millisecond,
		})
		defer r.Close()
		if err := r.Join("node-0", lp); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Query(res[i%len(res)])
		}
	})
}
