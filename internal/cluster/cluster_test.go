package cluster

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/p4lru/p4lru/internal/engine"
	"github.com/p4lru/p4lru/internal/policy"
	"github.com/p4lru/p4lru/internal/resilience"
)

const testSeed = 42

// newTestEngine builds a node engine big enough that the test keyspaces
// never evict (Ideal = true LRU, no hash-placement collisions), so
// assertions about resident keys are deterministic.
func newTestEngine(t *testing.T) *engine.Engine {
	t.Helper()
	e, err := engine.NewFromSpec(
		policy.Spec{Kind: policy.KindIdeal, MemBytes: 1 << 20, Seed: 9},
		engine.Config{Shards: 2, Block: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

// newTestCluster stands up n LocalPeer nodes behind one router. The
// heartbeat loop is off unless cfg enables it — membership tests drive
// Join/Leave/Fail explicitly.
func newTestCluster(t *testing.T, n int, cfg Config) (*Router, map[string]*LocalPeer) {
	t.Helper()
	if cfg.Seed == 0 {
		cfg.Seed = testSeed
	}
	if cfg.HeartbeatEvery == 0 {
		cfg.HeartbeatEvery = -1
	}
	r := New(cfg)
	t.Cleanup(r.Close)
	peers := make(map[string]*LocalPeer, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("node-%d", i)
		p := NewLocalPeer(newTestEngine(t), cfg.Seed)
		peers[id] = p
		if err := r.Join(id, p); err != nil {
			t.Fatalf("Join(%s): %v", id, err)
		}
	}
	return r, peers
}

func TestRouterEmptyRing(t *testing.T) {
	r := New(Config{Seed: testSeed, HeartbeatEvery: -1})
	defer r.Close()
	if _, _, err := r.Query(1); !errors.Is(err, ErrNoNodes) {
		t.Fatalf("Query on empty ring: %v, want ErrNoNodes", err)
	}
	if err := r.Update(1, 2); !errors.Is(err, ErrNoNodes) {
		t.Fatalf("Update on empty ring: %v, want ErrNoNodes", err)
	}
	if _, err := r.GetOrLoad(1, func(uint64) (uint64, error) { return 0, nil }); !errors.Is(err, ErrNoNodes) {
		t.Fatalf("GetOrLoad on empty ring: %v, want ErrNoNodes", err)
	}
}

func TestRouterSingleNode(t *testing.T) {
	r, _ := newTestCluster(t, 1, Config{})
	if _, ok, err := r.Query(7); ok || err != nil {
		t.Fatalf("Query(7) on cold node = (ok=%v, err=%v)", ok, err)
	}
	if err := r.Update(7, 70); err != nil {
		t.Fatalf("Update: %v", err)
	}
	if v, ok, err := r.Query(7); !ok || v != 70 || err != nil {
		t.Fatalf("Query(7) = (%d, %v, %v), want (70, true, nil)", v, ok, err)
	}
	loads := 0
	v, err := r.GetOrLoad(8, func(k uint64) (uint64, error) { loads++; return k * 10, nil })
	if err != nil || v != 80 || loads != 1 {
		t.Fatalf("GetOrLoad miss = (%d, %v), loads=%d", v, err, loads)
	}
	v, err = r.GetOrLoad(8, func(k uint64) (uint64, error) { loads++; return k * 10, nil })
	if err != nil || v != 80 || loads != 1 {
		t.Fatalf("GetOrLoad hit = (%d, %v), loads=%d (loader ran again)", v, err, loads)
	}
}

func TestRouterRoutesToOwner(t *testing.T) {
	r, peers := newTestCluster(t, 3, Config{})
	ring := r.Ring()
	for k := uint64(1); k <= 500; k++ {
		if err := r.Update(k, k*2); err != nil {
			t.Fatalf("Update(%d): %v", k, err)
		}
	}
	for k := uint64(1); k <= 500; k++ {
		owner := ring.Owner(k)
		if v, _, ok := peers[owner].Engine().Query(k); !ok || v != k*2 {
			t.Fatalf("key %d not on its owner %q (got %d, %v)", k, owner, v, ok)
		}
		for id, p := range peers {
			if id == owner {
				continue
			}
			if _, _, ok := p.Engine().Query(k); ok {
				t.Fatalf("non-hot key %d replicated to %q", k, id)
			}
		}
	}
}

// TestRouterJoinMigratesWarm: a joining node receives its hash ranges as a
// snapshot stream before taking ownership, so its first queries already hit.
func TestRouterJoinMigratesWarm(t *testing.T) {
	r, peers := newTestCluster(t, 2, Config{})
	const keys = 3000
	for k := uint64(1); k <= keys; k++ {
		if err := r.Update(k, k+9); err != nil {
			t.Fatal(err)
		}
	}
	joiner := NewLocalPeer(newTestEngine(t), testSeed)
	peers["node-9"] = joiner
	if err := r.Join("node-9", joiner); err != nil {
		t.Fatalf("Join: %v", err)
	}
	// The new node's engine was warmed by migration, not by traffic.
	ring := r.Ring()
	owned, resident := 0, 0
	for k := uint64(1); k <= keys; k++ {
		if ring.Owner(k) != "node-9" {
			continue
		}
		owned++
		if v, _, ok := joiner.Engine().Query(k); ok && v == k+9 {
			resident++
		}
	}
	if owned == 0 {
		t.Fatal("joining node owns no test keys")
	}
	if resident != owned {
		t.Fatalf("joiner holds %d of its %d keys after migration", resident, owned)
	}
	// And the full keyspace still serves through the router.
	for k := uint64(1); k <= keys; k++ {
		if v, ok, err := r.Query(k); !ok || v != k+9 || err != nil {
			t.Fatalf("Query(%d) after join = (%d, %v, %v)", k, v, ok, err)
		}
	}
}

// TestRouterLeaveKeepsServing: a graceful leave streams the departing
// node's ranges to their new owners; nothing acked is lost.
func TestRouterLeaveKeepsServing(t *testing.T) {
	r, _ := newTestCluster(t, 3, Config{})
	const keys = 3000
	for k := uint64(1); k <= keys; k++ {
		if err := r.Update(k, k^0xbeef); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Leave("node-1"); err != nil {
		t.Fatalf("Leave: %v", err)
	}
	if got := len(r.Members()); got != 2 {
		t.Fatalf("%d members after leave, want 2", got)
	}
	for k := uint64(1); k <= keys; k++ {
		if v, ok, err := r.Query(k); !ok || v != k^0xbeef || err != nil {
			t.Fatalf("Query(%d) after leave = (%d, %v, %v)", k, v, ok, err)
		}
	}
}

// TestRouterDualReadWindow exercises the miss-retry path directly: a key
// resident only at the previous holder of its arc is found through the
// window and re-installed at the current owner.
func TestRouterDualReadWindow(t *testing.T) {
	r, peers := newTestCluster(t, 2, Config{})
	ring := r.Ring()
	// Find a key owned by node-0.
	var key uint64
	for k := uint64(1); ; k++ {
		if ring.Owner(k) == "node-0" {
			key = k
			break
		}
	}
	// The value lives only on node-1, as if the arc just moved 1 → 0.
	if err := peers["node-1"].Update(key, 777); err != nil {
		t.Fatal(err)
	}
	st := r.state.Load()
	manual := &ringState{
		ring:  st.ring,
		peers: st.peers,
		windows: []dualWindow{{
			arcs:   [][2]uint64{{0, 0}}, // degenerate arc: whole circle
			source: "node-1",
			until:  time.Now().Add(time.Minute),
		}},
	}
	manual.index(r.gate)
	r.state.Store(manual)
	if v, ok, err := r.Query(key); !ok || v != 777 || err != nil {
		t.Fatalf("dual read = (%d, %v, %v), want (777, true, nil)", v, ok, err)
	}
	if v, _, ok := peers["node-0"].Engine().Query(key); !ok || v != 777 {
		t.Fatalf("dual-read hit not re-installed at owner (got %d, %v)", v, ok)
	}
}

// TestRouterHotKeyReplication: keys promoted to the hot set fan updates to
// the replica successors and survive the owner's death.
func TestRouterHotKeyReplication(t *testing.T) {
	r, peers := newTestCluster(t, 4, Config{Replicas: 3, HotK: 8})
	hotKey := uint64(12345)
	if err := r.Update(hotKey, 1); err != nil {
		t.Fatal(err)
	}
	// Hammer the key so the sampled sketch sees it, then force a publish.
	for i := 0; i < 4096; i++ {
		if _, _, err := r.Query(hotKey); err != nil {
			t.Fatal(err)
		}
	}
	r.hot.Publish()
	if !r.hot.Hot(hotKey) {
		t.Fatal("key not promoted to the hot set")
	}
	if err := r.Update(hotKey, 2); err != nil {
		t.Fatal(err)
	}
	ring := r.Ring()
	reps := ring.Replicas(hotKey, 3)
	for _, id := range reps {
		if v, _, ok := peers[id].Engine().Query(hotKey); !ok || v != 2 {
			t.Fatalf("replica %q missing the hot key (got %d, %v)", id, v, ok)
		}
	}
	// Kill the owner: the read fan still reaches a live replica.
	owner := reps[0]
	peers[owner].Kill()
	hits := 0
	for i := 0; i < 8; i++ {
		if v, ok, err := r.Query(hotKey); ok && v == 2 && err == nil {
			hits++
		}
	}
	if hits != 8 {
		t.Fatalf("only %d/8 reads survived the owner's death", hits)
	}
	// Failing the owner migrates its arcs from surviving replicas.
	if err := r.Fail(owner); err != nil {
		t.Fatalf("Fail: %v", err)
	}
	if v, ok, err := r.Query(hotKey); !ok || v != 2 || err != nil {
		t.Fatalf("Query after failover = (%d, %v, %v)", v, ok, err)
	}
}

// TestRouterHeartbeatAutoFail: the failure detector notices a dead peer,
// trips its breaker, and removes it from the ring without operator help.
func TestRouterHeartbeatAutoFail(t *testing.T) {
	r, peers := newTestCluster(t, 3, Config{
		HeartbeatEvery: 10 * time.Millisecond,
		Breaker: resilience.BreakerConfig{
			ConsecutiveFailures: 2,
			OpenFor:             10 * time.Second, // stay open; no flapping mid-test
		},
	})
	peers["node-2"].Kill()
	deadline := time.Now().Add(5 * time.Second)
	for len(r.Members()) != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("dead node never auto-failed; members = %v", r.Members())
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, m := range r.Members() {
		if m == "node-2" {
			t.Fatal("dead node still a member")
		}
	}
}
