package cluster

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/p4lru/p4lru/internal/sketch"
)

// hotKeys tracks the cluster's top-K keys by query frequency — the set the
// router replicates to successor nodes and fans reads across. Estimation
// reuses the CU sketch from the paper's LruMon tier; the published hot set
// is an immutable map behind an atomic pointer so the query path can test
// membership with one load and one lookup, no locks.
//
// Touches are sampled (1 in sampleStride) before they reach the sketch:
// at cluster query rates the sketch mutex would otherwise serialize the
// routers' hottest path, and top-K membership only needs relative
// frequencies, which survive uniform sampling.
type hotKeys struct {
	k int

	n   atomic.Uint64                   // touch counter, drives sampling
	hot atomic.Pointer[map[uint64]bool] // published top-K set

	mu    sync.Mutex
	sk    *sketch.CountMin
	cand  map[uint64]uint32 // candidate key → latest sketch estimate
	since uint64            // sampled touches since last publish
	epoch time.Time
}

const (
	hotSampleStride  = 8    // 1 in 8 touches reach the sketch
	hotPublishEvery  = 1024 // sampled touches between top-K publishes
	hotCandidateCap  = 8    // candidate map is bounded at hotCandidateCap*k
	hotSketchDepth   = 4
	hotSketchWidth   = 4096
	hotSketchResetMS = 4000 // estimates decay so yesterday's elephants cool off
)

func newHotKeys(k int, seed uint64) *hotKeys {
	if k <= 0 {
		return nil // replication disabled; all methods are nil-safe
	}
	return &hotKeys{
		k:     k,
		sk:    sketch.NewCU(hotSketchDepth, hotSketchWidth, hotSketchResetMS*time.Millisecond, seed^0x9e3779b97f4a7c15),
		cand:  make(map[uint64]uint32, hotCandidateCap*k),
		epoch: time.Now(),
	}
}

// Hot reports whether key is currently in the published top-K set.
// Lock-free: one atomic load and one map read of an immutable map.
func (h *hotKeys) Hot(key uint64) bool {
	if h == nil {
		return false
	}
	m := h.hot.Load()
	return m != nil && (*m)[key]
}

// Touch records one query against key, sampled.
func (h *hotKeys) Touch(key uint64) {
	if h == nil {
		return
	}
	if h.n.Add(1)%hotSampleStride != 0 {
		return
	}
	h.mu.Lock()
	est := h.sk.Add(key, 1, time.Since(h.epoch))
	h.cand[key] = est
	h.since++
	if len(h.cand) > hotCandidateCap*h.k {
		h.prune()
	}
	if h.since >= hotPublishEvery {
		h.since = 0
		h.publish()
	}
	h.mu.Unlock()
}

// Publish forces an immediate top-K publish (tests and membership changes
// that want a fresh set without waiting out the touch interval).
func (h *hotKeys) Publish() {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.publish()
	h.mu.Unlock()
}

// Keys returns the published hot set (unordered copy).
func (h *hotKeys) Keys() []uint64 {
	if h == nil {
		return nil
	}
	m := h.hot.Load()
	if m == nil {
		return nil
	}
	out := make([]uint64, 0, len(*m))
	for k := range *m {
		out = append(out, k)
	}
	return out
}

// publish rebuilds the top-K set from the candidates. Caller holds h.mu.
func (h *hotKeys) publish() {
	type kc struct {
		key uint64
		n   uint32
	}
	all := make([]kc, 0, len(h.cand))
	for k, n := range h.cand {
		all = append(all, kc{k, n})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].key < all[j].key // deterministic ties
	})
	if len(all) > h.k {
		all = all[:h.k]
	}
	m := make(map[uint64]bool, len(all))
	for _, e := range all {
		m[e.key] = true
	}
	h.hot.Store(&m)
}

// prune drops the coldest half of the candidate map. Caller holds h.mu.
func (h *hotKeys) prune() {
	counts := make([]uint32, 0, len(h.cand))
	for _, n := range h.cand {
		counts = append(counts, n)
	}
	sort.Slice(counts, func(i, j int) bool { return counts[i] < counts[j] })
	cut := counts[len(counts)/2]
	for k, n := range h.cand {
		if n <= cut && len(h.cand) > hotCandidateCap*h.k/2 {
			delete(h.cand, k)
		}
	}
}
