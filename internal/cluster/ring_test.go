package cluster

import (
	"fmt"
	"testing"
)

func ringMembers(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("node-%02d", i)
	}
	return out
}

func TestRingDeterministicAndOrderInsensitive(t *testing.T) {
	a := NewRing(7, 64, []string{"a", "b", "c"})
	b := NewRing(7, 64, []string{"c", "a", "b", "a"}) // shuffled + duplicate
	for k := uint64(0); k < 5000; k++ {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("key %d: owner %q vs %q for the same membership", k, a.Owner(k), b.Owner(k))
		}
	}
	if a.Size() != 3 || b.Size() != 3 {
		t.Fatalf("sizes %d/%d, want 3", a.Size(), b.Size())
	}
}

func TestRingReplicasDistinctOwnerFirst(t *testing.T) {
	r := NewRing(3, 32, ringMembers(5))
	for k := uint64(0); k < 2000; k++ {
		reps := r.Replicas(k, 3)
		if len(reps) != 3 {
			t.Fatalf("key %d: %d replicas, want 3", k, len(reps))
		}
		if reps[0] != r.Owner(k) {
			t.Fatalf("key %d: replicas[0] = %q, owner = %q", k, reps[0], r.Owner(k))
		}
		seen := map[string]bool{}
		for _, m := range reps {
			if seen[m] {
				t.Fatalf("key %d: duplicate replica %q", k, m)
			}
			seen[m] = true
		}
	}
	// Asking for more replicas than members returns every member once.
	if got := len(r.Replicas(1, 99)); got != 5 {
		t.Fatalf("Replicas(1, 99) returned %d members, want 5", got)
	}
}

// TestRingStabilityOnJoin is the consistent-hashing contract: adding one
// node to an N-node ring moves at most ~1/(N+1) of the keyspace (plus vnode
// placement noise), and every moved key moves *to* the new node.
func TestRingStabilityOnJoin(t *testing.T) {
	const n, keys = 8, 20000
	old := NewRing(11, 128, ringMembers(n))
	next := NewRing(11, 128, append(ringMembers(n), "node-new"))
	moved := 0
	for k := uint64(0); k < keys; k++ {
		was, now := old.Owner(k), next.Owner(k)
		if was == now {
			continue
		}
		moved++
		if now != "node-new" {
			t.Fatalf("key %d moved %q → %q, not to the joining node", k, was, now)
		}
	}
	frac := float64(moved) / keys
	if limit := 1.0/float64(n+1) + 0.05; frac > limit {
		t.Fatalf("join moved %.1f%% of keys, limit %.1f%%", frac*100, limit*100)
	}
	if moved == 0 {
		t.Fatal("join moved nothing — the new node owns no keys")
	}
}

// TestRingStabilityOnLeave: removing a node moves exactly the keys it
// owned (~1/N of the keyspace) and disturbs nothing else.
func TestRingStabilityOnLeave(t *testing.T) {
	const n, keys = 8, 20000
	members := ringMembers(n)
	old := NewRing(11, 128, members)
	gone := members[3]
	next := NewRing(11, 128, append(append([]string{}, members[:3]...), members[4:]...))
	moved := 0
	for k := uint64(0); k < keys; k++ {
		was, now := old.Owner(k), next.Owner(k)
		if was == gone {
			moved++
			if now == gone {
				t.Fatalf("key %d still owned by the removed node", k)
			}
			continue
		}
		if was != now {
			t.Fatalf("key %d moved %q → %q though its owner never left", k, was, now)
		}
	}
	frac := float64(moved) / keys
	if limit := 1.0/float64(n) + 0.05; frac > limit {
		t.Fatalf("leave moved %.1f%% of keys, limit %.1f%%", frac*100, limit*100)
	}
}

// TestRingVnodeBalanceSweep: more virtual nodes bound ownership imbalance
// tighter. At 128 vnodes an 8-node ring should be within ~35% of perfectly
// even, and strictly better than the 4-vnode ring.
func TestRingVnodeBalanceSweep(t *testing.T) {
	const n, keys = 8, 40000
	imbalance := func(vnodes int) float64 {
		r := NewRing(11, vnodes, ringMembers(n))
		counts := map[string]int{}
		for k := uint64(0); k < keys; k++ {
			counts[r.Owner(k)]++
		}
		max := 0
		for _, c := range counts {
			if c > max {
				max = c
			}
		}
		return float64(max) / (float64(keys) / n) // 1.0 = perfectly even
	}
	sweep := map[int]float64{}
	for _, v := range []int{4, 16, 64, 128} {
		sweep[v] = imbalance(v)
		t.Logf("vnodes=%3d max/mean ownership = %.3f", v, sweep[v])
	}
	if sweep[128] > 1.35 {
		t.Fatalf("128 vnodes: max/mean = %.3f, want ≤ 1.35", sweep[128])
	}
	if sweep[128] >= sweep[4] {
		t.Fatalf("imbalance did not improve with vnodes: 4→%.3f, 128→%.3f", sweep[4], sweep[128])
	}
}

// TestPlanJoinArcsCoverMovedKeys: the migration plan for a join names
// exactly the hash ranges whose keys change owner.
func TestPlanJoinArcsCoverMovedKeys(t *testing.T) {
	old := NewRing(5, 64, ringMembers(4))
	next := NewRing(5, 64, append(ringMembers(4), "node-new"))
	transfers := Plan(old, next, 1)
	if len(transfers) == 0 {
		t.Fatal("empty plan for a join")
	}
	var arcs [][2]uint64
	for _, tr := range transfers {
		if tr.Dest != "node-new" {
			t.Fatalf("join plan has dest %q; with replicas=1 only the joining node gains", tr.Dest)
		}
		if len(tr.Sources) == 0 {
			t.Fatal("transfer with no sources")
		}
		for _, s := range tr.Sources {
			if !containsStr(old.Members(), s) {
				t.Fatalf("source %q is not an old member", s)
			}
		}
		arcs = append(arcs, tr.Arcs...)
	}
	for k := uint64(0); k < 20000; k++ {
		movedKey := old.Owner(k) != next.Owner(k)
		inArcs := arcsContain(arcs, old.Pos(k))
		if movedKey && !inArcs {
			t.Fatalf("key %d moved but no transfer arc covers it", k)
		}
		if !movedKey && inArcs {
			t.Fatalf("key %d did not move but a transfer arc claims it", k)
		}
	}
}

// TestPlanDeathUsesSurvivingReplicas: with replication, removing a node
// produces transfers whose sources include survivors — the replica copies
// the failover migration streams from.
func TestPlanDeathUsesSurvivingReplicas(t *testing.T) {
	members := ringMembers(4)
	old := NewRing(5, 64, members)
	dead := members[1]
	next := NewRing(5, 64, append(append([]string{}, members[:1]...), members[2:]...))
	transfers := Plan(old, next, 3)
	if len(transfers) == 0 {
		t.Fatal("empty plan for a death with replicas=3")
	}
	for _, tr := range transfers {
		if tr.Dest == dead {
			t.Fatalf("plan streams into the dead node %q", dead)
		}
		survivors := 0
		for _, s := range tr.Sources {
			if s != dead {
				survivors++
			}
		}
		if survivors == 0 {
			t.Fatalf("transfer to %q has no surviving source (sources %v)", tr.Dest, tr.Sources)
		}
	}
}

func TestArcContainsWraparound(t *testing.T) {
	cases := []struct {
		arc  [2]uint64
		h    uint64
		want bool
	}{
		{[2]uint64{10, 20}, 10, false}, // (from, to] excludes from
		{[2]uint64{10, 20}, 15, true},
		{[2]uint64{10, 20}, 20, true}, // includes to
		{[2]uint64{10, 20}, 21, false},
		{[2]uint64{^uint64(0) - 5, 5}, ^uint64(0), true}, // wraps through zero
		{[2]uint64{^uint64(0) - 5, 5}, 0, true},
		{[2]uint64{^uint64(0) - 5, 5}, 6, false},
		{[2]uint64{7, 7}, 123, true}, // degenerate arc covers the circle
	}
	for _, c := range cases {
		if got := arcContains(c.arc, c.h); got != c.want {
			t.Errorf("arcContains(%v, %d) = %v, want %v", c.arc, c.h, got, c.want)
		}
	}
}
