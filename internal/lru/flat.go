package lru

import (
	"fmt"
	"runtime"

	"github.com/p4lru/p4lru/internal/hashing"
)

// FlatArray3 is the parallel-connection array of P4LRU3 units (§1.2) in a
// struct-of-arrays layout: instead of m heap-allocated *Unit3 values behind
// an interface, the state of all units lives in three contiguous slabs
//
//	keys : []uint64, 3 per unit — the key registers of stages 1–3
//	vals : []uint64, 3 per unit — the value registers of stages 1–3
//	meta : []uint32, 1 per unit — the seqlock word: version<<8 | packed
//	       state byte (bits 0–2 the Table 1 code, bits 3–4 the occupancy)
//
// indexed by unit number. This is the memory model of the hardware itself:
// on Tofino each stage owns one register array indexed by h(key), and a
// packet's unit index addresses the same row of every array ("Packet
// Transactions" formalizes exactly this per-stage register-array
// discipline). In software the layout removes the per-access interface
// dispatch and pointer chase of Array — a unit's address is computed
// arithmetically from slab bases already in registers, so the key/value
// line loads issue in parallel instead of serializing behind an interface
// data-pointer load — and shrinks the footprint of 2^16 units from ~6MB of
// scattered heap objects to ~4MB of slabs.
//
// FlatArray3 is behaviourally identical to NewArray3 with the same seed:
// same index hash, same key rotation, same Table 1 state arithmetic, same
// value-slot placement. The differential tests pin this equivalence, so the
// generic Array remains the readable oracle while FlatArray3 is the serving
// core. Update, Lookup, InsertTail and the batch walks perform zero heap
// allocations.
//
// Concurrency: one writer, any number of readers. Lookup, QueryBatch, Len
// and Range are safe to run concurrently with the writer's Update,
// InsertTail, UpdateBatch and Reset — every unit mutation is bracketed by
// its seqlock word (see flatseq.go), and readers retry the rare snapshot
// that a concurrent mutation tears. Mutators themselves must still be
// serialized by the caller; the serving engine gives each shard a private
// array behind its single writer.
type FlatArray3 struct {
	keys  []uint64 // len 3·units, keys[3u..3u+2] in LRU order (0 = MRU)
	vals  []uint64 // len 3·units, fixed slots permuted by the unit state
	meta  []uint32 // len units, seqlock word (version<<8 | state byte)
	hash  hashing.Hash
	merge MergeFunc[uint64]

	// batchUnits is the reusable scratch of the writer's batch walk: unit
	// indexes are hashed up front so the apply pass streams through the
	// slabs with the next units' lines already warming (see UpdateBatch).
	// Writer-owned; the reader-side QueryBatch uses stack scratch instead.
	batchUnits []int32
}

const (
	flatStateMask = 0x07 // bits 0–2: State3 code (0–5)
	flatSizeShift = 3    // bits 3–4: occupancy (0–3)
)

// batchLookahead is how many ops ahead of the apply cursor the batch walks
// touch the target unit's key line. Far enough to cover a main
// memory load, near enough that the lines survive until use.
const batchLookahead = 8

// flatQueryChunk is the stack-scratch width of QueryBatch: keys are hashed
// and walked in chunks of this many, so the read path needs no shared
// scratch and stays safe under concurrent readers.
const flatQueryChunk = 64

// NewFlatArray3 builds a flat array of numUnits empty P4LRU3 units. seed
// selects the index-hash family member exactly as NewArray3 does, so a
// FlatArray3 and a NewArray3 with equal seeds place every key in the same
// unit. merge may be nil for replace-on-hit semantics.
func NewFlatArray3(numUnits int, seed uint64, merge MergeFunc[uint64]) *FlatArray3 {
	if numUnits < 1 {
		panic(fmt.Sprintf("lru: flat array with %d units", numUnits))
	}
	a := &FlatArray3{
		keys:  make([]uint64, 3*numUnits),
		vals:  make([]uint64, 3*numUnits),
		meta:  make([]uint32, numUnits),
		hash:  hashing.New(seed),
		merge: merge,
	}
	for u := range a.meta {
		a.meta[u] = uint32(State3Initial)
	}
	return a
}

// Units returns the number of units.
func (a *FlatArray3) Units() int { return len(a.meta) }

// UnitCap returns 3.
func (a *FlatArray3) UnitCap() int { return 3 }

// Capacity returns the total entry capacity (3 per unit).
func (a *FlatArray3) Capacity() int { return 3 * len(a.meta) }

// Len returns the total number of occupied entries across all units. Safe
// concurrent with the writer; each unit's occupancy is one word read, so
// the sum is per-unit consistent but not a cross-unit snapshot.
func (a *FlatArray3) Len() int {
	total := 0
	for u := range a.meta {
		total += int(seqLoad32(&a.meta[u])&flatMetaMask) >> flatSizeShift
	}
	return total
}

// UnitIndex returns the unit addressed by h(k) — the paper's per-packet
// register index.
func (a *FlatArray3) UnitIndex(k uint64) int {
	return a.hash.Index(k, len(a.meta))
}

// UnitLen returns the occupancy of unit u.
func (a *FlatArray3) UnitLen(u int) int {
	return int(seqLoad32(&a.meta[u])&flatMetaMask) >> flatSizeShift
}

// UnitState returns the encoded cache state of unit u (a Table 1 code).
func (a *FlatArray3) UnitState(u int) State3 {
	return State3(seqLoad32(&a.meta[u]) & flatStateMask)
}

// UnitKeyAt returns the i-th key of unit u in LRU order (0 = most recently
// used). It panics if i ≥ UnitLen(u). For the differential tests and
// debugging, mirroring UnitCache.KeyAt; unlike Lookup it does not retry
// torn snapshots, so call it only while the writer is quiescent.
func (a *FlatArray3) UnitKeyAt(u, i int) uint64 {
	if i < 0 || i >= a.UnitLen(u) {
		panic(fmt.Sprintf("lru: UnitKeyAt(%d) with %d entries", i, a.UnitLen(u)))
	}
	return seqLoad64(&a.keys[3*u+i])
}

// Lookup returns the value for k without modifying the array. Safe
// concurrent with the writer.
func (a *FlatArray3) Lookup(k uint64) (uint64, bool) {
	return a.lookupInUnit(a.UnitIndex(k), k)
}

func (a *FlatArray3) lookupInUnit(u int, k uint64) (uint64, bool) {
	base := 3 * u
	kk := a.keys[base : base+3 : base+3]
	vv := a.vals[base : base+3 : base+3]
	for spin := 0; ; spin++ {
		w := seqLoad32(&a.meta[u])
		if w&flatSeqOdd == 0 {
			size := int(w&flatMetaMask) >> flatSizeShift
			var v uint64
			found := false
			for i := 0; i < size; i++ {
				if seqLoad64(&kk[i]) == k {
					v = seqLoad64(&vv[state3ValPos[w&flatStateMask][i]])
					found = true
					break
				}
			}
			// An unchanged word proves no mutation overlapped the reads
			// above, so the (key, value, state) triple is consistent.
			if seqLoad32(&a.meta[u]) == w {
				return v, found
			}
		}
		if spin&seqSpinMask == seqSpinMask {
			runtime.Gosched()
		}
	}
}

// Update inserts or refreshes k in its unit: Algorithm 1 specialized to
// n=3, operating directly on the slabs. It is step-for-step the slab form
// of Unit3.Update, with the register rewrites seqlock-bracketed so
// concurrent readers never observe a half-applied transition.
func (a *FlatArray3) Update(k, v uint64) Result[uint64] {
	return a.updateInUnit(a.UnitIndex(k), k, v)
}

// state3NextMeta[op] maps a packed state byte to its successor under the
// §2.3.2 operation op — the Op1/Op2/Op3 arithmetic plus the occupancy
// increment on insertion, folded into one table load on the hot path. Only
// the 24 valid byte values (state ≤ 5, size ≤ 3) are populated; the tables
// are sized 32 so a meta&0x1f index needs no bounds check.
var state3NextMeta = func() (t [3][32]uint8) {
	ops := [3]func(State3) State3{State3Op1, State3Op2, State3Op3}
	for m := 0; m < 32; m++ {
		state := State3(m & flatStateMask)
		size := uint8(m) >> flatSizeShift
		if state > 5 || size > 3 {
			continue
		}
		for op := range ops {
			newSize := size
			// Update on a non-full unit with op == size is an insertion.
			if size < 3 && op == int(size) {
				newSize = size + 1
			}
			t[op][m] = uint8(ops[op](state)) | newSize<<flatSizeShift
		}
	}
	return
}()

func (a *FlatArray3) updateInUnit(u int, k, v uint64) Result[uint64] {
	var res Result[uint64]
	base := 3 * u
	kk := a.keys[base : base+3 : base+3]
	w := a.meta[u]
	m := uint8(w)
	size := m >> flatSizeShift

	// Find the rotation endpoint: the hit position, the first free slot, or
	// the LRU slot on a full miss. The writer owns all mutation, so its own
	// reads need no snapshot protocol.
	var op uint8
	switch {
	case size > 0 && kk[0] == k:
		res.Hit = true
		op = 0
	case size > 1 && kk[1] == k:
		res.Hit = true
		op = 1
	case size > 2 && kk[2] == k:
		res.Hit = true
		op = 2
	case size < 3:
		op = size
	default:
		op = 2
		res.Evicted = true
		res.EvictedKey = kk[2]
	}

	// Stateful-ALU arithmetic transition (§2.3.2), with the occupancy bump
	// folded in, and the value slot of the (new) most recently used key.
	nm := state3NextMeta[op][m&0x1f]
	slot := base + int(state3ValPos[nm&flatStateMask][0])
	if res.Evicted {
		res.EvictedValue = a.vals[slot]
	}
	nv := v
	if res.Hit && a.merge != nil {
		nv = a.merge(a.vals[slot], v)
	}

	// Publish: mark the unit in-flight, rotate keys[0..op] forward with the
	// incoming key at position 0, store the value, land the new word.
	seqBegin(&a.meta[u])
	switch op {
	case 1:
		seqStore64(&kk[1], kk[0])
	case 2:
		seqStore64(&kk[2], kk[1])
		seqStore64(&kk[1], kk[0])
	}
	seqStore64(&kk[0], k)
	seqStore64(&a.vals[slot], nv)
	seqPublish(&a.meta[u], (w+flatSeqStep)&^uint32(flatMetaMask)|uint32(nm))
	return res
}

// InsertTail stores k as the least recently used entry of its unit without
// a state transition (series-connection demotion, §3.2) — the slab form of
// Unit3.InsertTail, seqlock-bracketed like Update.
func (a *FlatArray3) InsertTail(k, v uint64) Result[uint64] {
	u := a.UnitIndex(k)
	var res Result[uint64]
	base := 3 * u
	w := a.meta[u]
	m := uint8(w)
	state := m & flatStateMask
	size := m >> flatSizeShift

	for i := 0; i < int(size); i++ {
		if a.keys[base+i] == k {
			res.Hit = true
			seqBegin(&a.meta[u])
			seqStore64(&a.vals[base+int(state3ValPos[state][i])], v)
			seqPublish(&a.meta[u], w+flatSeqStep)
			return res
		}
	}
	if size < 3 {
		seqBegin(&a.meta[u])
		seqStore64(&a.keys[base+int(size)], k)
		seqStore64(&a.vals[base+int(state3ValPos[state][size])], v)
		seqPublish(&a.meta[u], w+flatSeqStep+1<<flatSizeShift)
		return res
	}
	slot := base + int(state3ValPos[state][2])
	res.Evicted = true
	res.EvictedKey = a.keys[base+2]
	res.EvictedValue = a.vals[slot]
	seqBegin(&a.meta[u])
	seqStore64(&a.keys[base+2], k)
	seqStore64(&a.vals[slot], v)
	seqPublish(&a.meta[u], w+flatSeqStep)
	return res
}

// units ensures the writer's batch scratch covers n ops and returns it. The
// scratch is grown amortized, so steady-state batch walks allocate nothing.
func (a *FlatArray3) units(n int) []int32 {
	if cap(a.batchUnits) < n {
		a.batchUnits = make([]int32, n)
	}
	return a.batchUnits[:n]
}

// QueryBatch looks up every keys[i], writing the value into vals[i] and the
// residency into oks[i]. Keys are hashed and walked in stack-scratch chunks
// with the next units' key lines touched ahead of the cursor — the
// cache-friendly counterpart of len(keys) Lookup calls. vals and oks must
// be at least len(keys) long. Zero heap allocations; safe concurrent with
// the writer and with other readers (no shared scratch).
func (a *FlatArray3) QueryBatch(keys []uint64, vals []uint64, oks []bool) {
	var units [flatQueryChunk]int32
	var touched uint64
	for start := 0; start < len(keys); start += flatQueryChunk {
		part := keys[start:min(start+flatQueryChunk, len(keys))]
		for i, k := range part {
			units[i] = int32(a.UnitIndex(k))
		}
		for i, k := range part {
			if j := i + batchLookahead; j < len(part) {
				touched += seqLoad64(&a.keys[3*units[j]])
			}
			vals[start+i], oks[start+i] = a.lookupInUnit(int(units[i]), k)
		}
	}
	sinkUint64(touched)
}

// UpdateBatch applies Update(keys[i], vals[i]) for every i in order and
// reports the hit and eviction totals. Like QueryBatch it hashes all keys
// up front and streams through the slabs with lookahead line touches; the
// serving engine's shard writers apply whole op batches through this walk.
// vals must be at least len(keys) long. Zero heap allocations at steady
// state.
func (a *FlatArray3) UpdateBatch(keys, vals []uint64) (hits, evictions int) {
	units := a.units(len(keys))
	for i, k := range keys {
		units[i] = int32(a.UnitIndex(k))
	}
	var touched uint64
	for i, k := range keys {
		if j := i + batchLookahead; j < len(units) {
			touched += seqLoad64(&a.keys[3*units[j]])
		}
		res := a.updateInUnit(int(units[i]), k, vals[i])
		if res.Hit {
			hits++
		}
		if res.Evicted {
			evictions++
		}
	}
	sinkUint64(touched)
	return hits, evictions
}

// Range calls fn for every cached (key, value) pair until fn returns false.
// Iteration order is unit order, then LRU order within a unit — the same
// order as Array.Range. Safe concurrent with the writer: each unit is
// snapshotted through its seqlock before fn sees it, so fn never observes a
// torn unit (though the walk as a whole is not a cross-unit snapshot).
func (a *FlatArray3) Range(fn func(k, v uint64) bool) {
	var ks, vs [3]uint64
	for u := range a.meta {
		base := 3 * u
		size := 0
		for spin := 0; ; spin++ {
			w := seqLoad32(&a.meta[u])
			if w&flatSeqOdd == 0 {
				size = int(w&flatMetaMask) >> flatSizeShift
				for i := 0; i < size; i++ {
					ks[i] = seqLoad64(&a.keys[base+i])
					vs[i] = seqLoad64(&a.vals[base+int(state3ValPos[w&flatStateMask][i])])
				}
				if seqLoad32(&a.meta[u]) == w {
					break
				}
			}
			if spin&seqSpinMask == seqSpinMask {
				runtime.Gosched()
			}
		}
		for i := 0; i < size; i++ {
			if !fn(ks[i], vs[i]) {
				return
			}
		}
	}
}

// Reset empties every unit and restores the initial cache state. A writer
// operation: each unit is cleared under its seqlock bracket (versions keep
// advancing, so concurrent readers see either the old unit or the empty
// one, never a mix).
func (a *FlatArray3) Reset() {
	for u := range a.meta {
		base := 3 * u
		w := a.meta[u]
		seqBegin(&a.meta[u])
		for i := 0; i < 3; i++ {
			seqStore64(&a.keys[base+i], 0)
			seqStore64(&a.vals[base+i], 0)
		}
		seqPublish(&a.meta[u], (w+flatSeqStep)&^uint32(flatMetaMask)|uint32(State3Initial))
	}
}
