package lru

import (
	"fmt"

	"github.com/p4lru/p4lru/internal/hashing"
)

// FlatArray3 is the parallel-connection array of P4LRU3 units (§1.2) in a
// struct-of-arrays layout: instead of m heap-allocated *Unit3 values behind
// an interface, the state of all units lives in three contiguous slabs
//
//	keys : []uint64, 3 per unit  — the key registers of stages 1–3
//	vals : []V,      3 per unit  — the value registers of stages 1–3
//	meta : []uint8,  1 per unit  — the packed cache state (bits 0–2, the
//	                               Table 1 code) and occupancy (bits 3–4)
//
// indexed by unit number. This is the memory model of the hardware itself:
// on Tofino each stage owns one register array indexed by h(key), and a
// packet's unit index addresses the same row of every array ("Packet
// Transactions" formalizes exactly this per-stage register-array
// discipline). In software the layout removes the per-access interface
// dispatch and pointer chase of Array — a unit's address is computed
// arithmetically from slab bases already in registers, so the key/value
// line loads issue in parallel instead of serializing behind an interface
// data-pointer load — and shrinks the footprint of 2^16 units from ~6MB of
// scattered heap objects to ~4MB of slabs.
//
// FlatArray3 is behaviourally identical to NewArray3 with the same seed:
// same index hash, same key rotation, same Table 1 state arithmetic, same
// value-slot placement. The differential tests pin this equivalence, so the
// generic Array remains the readable oracle while FlatArray3 is the serving
// core. Update, Lookup, InsertTail and the batch walks perform zero heap
// allocations.
//
// A FlatArray3 is not safe for concurrent use; the serving engine gives
// each shard a private one behind its single writer.
type FlatArray3[V any] struct {
	keys  []uint64 // len 3·units, keys[3u..3u+2] in LRU order (0 = MRU)
	vals  []V      // len 3·units, fixed slots permuted by the unit state
	meta  []uint8  // len units, state3 code | size<<flatSizeShift
	hash  hashing.Hash
	merge MergeFunc[V]

	// batchUnits is the reusable scratch of the batch walks: unit indexes
	// are hashed up front so the apply pass streams through the slabs with
	// the next units' lines already warming (see UpdateBatch).
	batchUnits []int32
	// touched is a sink for the lookahead line touches, so the loads cannot
	// be discarded as dead.
	touched uint64
}

const (
	flatStateMask = 0x07 // bits 0–2: State3 code (0–5)
	flatSizeShift = 3    // bits 3–4: occupancy (0–3)
)

// batchLookahead is how many ops ahead of the apply cursor the batch walks
// touch the target unit's key line. Far enough to cover a main
// memory load, near enough that the lines survive until use.
const batchLookahead = 8

// NewFlatArray3 builds a flat array of numUnits empty P4LRU3 units. seed
// selects the index-hash family member exactly as NewArray3 does, so a
// FlatArray3 and a NewArray3 with equal seeds place every key in the same
// unit. merge may be nil for replace-on-hit semantics.
func NewFlatArray3[V any](numUnits int, seed uint64, merge MergeFunc[V]) *FlatArray3[V] {
	if numUnits < 1 {
		panic(fmt.Sprintf("lru: flat array with %d units", numUnits))
	}
	a := &FlatArray3[V]{
		keys:  make([]uint64, 3*numUnits),
		vals:  make([]V, 3*numUnits),
		meta:  make([]uint8, numUnits),
		hash:  hashing.New(seed),
		merge: merge,
	}
	for u := range a.meta {
		a.meta[u] = uint8(State3Initial)
	}
	return a
}

// Units returns the number of units.
func (a *FlatArray3[V]) Units() int { return len(a.meta) }

// Capacity returns the total entry capacity (3 per unit).
func (a *FlatArray3[V]) Capacity() int { return 3 * len(a.meta) }

// Len returns the total number of occupied entries across all units.
func (a *FlatArray3[V]) Len() int {
	total := 0
	for _, m := range a.meta {
		total += int(m >> flatSizeShift)
	}
	return total
}

// UnitIndex returns the unit addressed by h(k) — the paper's per-packet
// register index.
func (a *FlatArray3[V]) UnitIndex(k uint64) int {
	return a.hash.Index(k, len(a.meta))
}

// UnitLen returns the occupancy of unit u.
func (a *FlatArray3[V]) UnitLen(u int) int { return int(a.meta[u] >> flatSizeShift) }

// UnitState returns the encoded cache state of unit u (a Table 1 code).
func (a *FlatArray3[V]) UnitState(u int) State3 { return State3(a.meta[u] & flatStateMask) }

// UnitKeyAt returns the i-th key of unit u in LRU order (0 = most recently
// used). It panics if i ≥ UnitLen(u). For the differential tests and
// debugging, mirroring UnitCache.KeyAt.
func (a *FlatArray3[V]) UnitKeyAt(u, i int) uint64 {
	if i < 0 || i >= a.UnitLen(u) {
		panic(fmt.Sprintf("lru: UnitKeyAt(%d) with %d entries", i, a.UnitLen(u)))
	}
	return a.keys[3*u+i]
}

// Lookup returns the value for k without modifying the array.
func (a *FlatArray3[V]) Lookup(k uint64) (V, bool) {
	return a.lookupInUnit(a.UnitIndex(k), k)
}

func (a *FlatArray3[V]) lookupInUnit(u int, k uint64) (V, bool) {
	base := 3 * u
	kk := a.keys[base : base+3 : base+3]
	m := a.meta[u]
	size := int(m >> flatSizeShift)
	for i := 0; i < size; i++ {
		if kk[i] == k {
			return a.vals[base+int(state3ValPos[m&flatStateMask][i])], true
		}
	}
	var zero V
	return zero, false
}

// Update inserts or refreshes k in its unit: Algorithm 1 specialized to
// n=3, operating directly on the slabs. It is step-for-step the slab form
// of Unit3.Update.
func (a *FlatArray3[V]) Update(k uint64, v V) Result[V] {
	return a.updateInUnit(a.UnitIndex(k), k, v)
}

// state3NextMeta[op] maps a packed meta byte to its successor under the
// §2.3.2 operation op — the Op1/Op2/Op3 arithmetic plus the occupancy
// increment on insertion, folded into one table load on the hot path. Only
// the 24 valid meta values (state ≤ 5, size ≤ 3) are populated; the tables
// are sized 32 so a meta&0x1f index needs no bounds check.
var state3NextMeta = func() (t [3][32]uint8) {
	ops := [3]func(State3) State3{State3Op1, State3Op2, State3Op3}
	for m := 0; m < 32; m++ {
		state := State3(m & flatStateMask)
		size := uint8(m) >> flatSizeShift
		if state > 5 || size > 3 {
			continue
		}
		for op := range ops {
			newSize := size
			// Update on a non-full unit with op == size is an insertion.
			if size < 3 && op == int(size) {
				newSize = size + 1
			}
			t[op][m] = uint8(ops[op](state)) | newSize<<flatSizeShift
		}
	}
	return
}()

func (a *FlatArray3[V]) updateInUnit(u int, k uint64, v V) Result[V] {
	var res Result[V]
	base := 3 * u
	kk := a.keys[base : base+3 : base+3]
	m := a.meta[u]
	size := m >> flatSizeShift

	// Find the rotation endpoint: the hit position, the first free slot, or
	// the LRU slot on a full miss.
	var op uint8
	switch {
	case size > 0 && kk[0] == k:
		res.Hit = true
		op = 0
	case size > 1 && kk[1] == k:
		res.Hit = true
		op = 1
	case size > 2 && kk[2] == k:
		res.Hit = true
		op = 2
	case size < 3:
		op = size
	default:
		op = 2
		res.Evicted = true
		res.EvictedKey = kk[2]
	}

	// Step 1: rotate keys[0..op] forward; the incoming key takes position 0.
	switch op {
	case 1:
		kk[1] = kk[0]
	case 2:
		kk[2] = kk[1]
		kk[1] = kk[0]
	}
	kk[0] = k

	// Step 2: stateful-ALU arithmetic transition (§2.3.2), with the
	// occupancy bump folded in.
	m = state3NextMeta[op][m&0x1f]
	a.meta[u] = m

	// Step 3: the value slot of the (new) most recently used key.
	slot := base + int(state3ValPos[m&flatStateMask][0])
	if res.Evicted {
		res.EvictedValue = a.vals[slot]
	}
	if res.Hit && a.merge != nil {
		a.vals[slot] = a.merge(a.vals[slot], v)
	} else {
		a.vals[slot] = v
	}
	return res
}

// InsertTail stores k as the least recently used entry of its unit without
// a state transition (series-connection demotion, §3.2) — the slab form of
// Unit3.InsertTail.
func (a *FlatArray3[V]) InsertTail(k uint64, v V) Result[V] {
	u := a.UnitIndex(k)
	var res Result[V]
	base := 3 * u
	m := a.meta[u]
	state := m & flatStateMask
	size := m >> flatSizeShift

	for i := 0; i < int(size); i++ {
		if a.keys[base+i] == k {
			res.Hit = true
			a.vals[base+int(state3ValPos[state][i])] = v
			return res
		}
	}
	if size < 3 {
		a.keys[base+int(size)] = k
		a.vals[base+int(state3ValPos[state][size])] = v
		a.meta[u] = m + 1<<flatSizeShift
		return res
	}
	slot := base + int(state3ValPos[state][2])
	res.Evicted = true
	res.EvictedKey = a.keys[base+2]
	res.EvictedValue = a.vals[slot]
	a.keys[base+2] = k
	a.vals[slot] = v
	return res
}

// units ensures the batch scratch covers n ops and returns it. The scratch
// is grown amortized, so steady-state batch walks allocate nothing.
func (a *FlatArray3[V]) units(n int) []int32 {
	if cap(a.batchUnits) < n {
		a.batchUnits = make([]int32, n)
	}
	return a.batchUnits[:n]
}

// QueryBatch looks up every keys[i], writing the value into vals[i] and the
// residency into oks[i]. It hashes all keys up front, then walks the units
// in one pass with the next units' key lines touched ahead of the
// cursor — the cache-friendly counterpart of len(keys) Lookup calls. vals
// and oks must be at least len(keys) long. Zero heap allocations at steady
// state.
func (a *FlatArray3[V]) QueryBatch(keys []uint64, vals []V, oks []bool) {
	units := a.units(len(keys))
	for i, k := range keys {
		units[i] = int32(a.UnitIndex(k))
	}
	var touched uint64
	for i, k := range keys {
		if j := i + batchLookahead; j < len(units) {
			u := units[j]
			touched += a.keys[3*u]
		}
		vals[i], oks[i] = a.lookupInUnit(int(units[i]), k)
	}
	a.touched = touched
}

// UpdateBatch applies Update(keys[i], vals[i]) for every i in order and
// reports the hit and eviction totals. Like QueryBatch it hashes all keys
// up front and streams through the slabs with lookahead line touches; the
// serving engine's shard writers apply whole op batches through this walk.
// vals must be at least len(keys) long. Zero heap allocations at steady
// state.
func (a *FlatArray3[V]) UpdateBatch(keys []uint64, vals []V) (hits, evictions int) {
	units := a.units(len(keys))
	for i, k := range keys {
		units[i] = int32(a.UnitIndex(k))
	}
	var touched uint64
	for i, k := range keys {
		if j := i + batchLookahead; j < len(units) {
			u := units[j]
			touched += a.keys[3*u]
		}
		res := a.updateInUnit(int(units[i]), k, vals[i])
		if res.Hit {
			hits++
		}
		if res.Evicted {
			evictions++
		}
	}
	a.touched = touched
	return hits, evictions
}

// Range calls fn for every cached (key, value) pair until fn returns false.
// Iteration order is unit order, then LRU order within a unit — the same
// order as Array.Range.
func (a *FlatArray3[V]) Range(fn func(k uint64, v V) bool) {
	for u := range a.meta {
		m := a.meta[u]
		base := 3 * u
		size := int(m >> flatSizeShift)
		for i := 0; i < size; i++ {
			if !fn(a.keys[base+i], a.vals[base+int(state3ValPos[m&flatStateMask][i])]) {
				return
			}
		}
	}
}

// Reset empties every unit and restores the initial cache state.
func (a *FlatArray3[V]) Reset() {
	clear(a.keys)
	clear(a.vals)
	for u := range a.meta {
		a.meta[u] = uint8(State3Initial)
	}
}
