package lru

import "sync/atomic"

// Seqlock protocol of the flat cores.
//
// Every flat array keeps one uint32 word per unit:
//
//	bits 0–7  : the packed state byte (occupancy + cache-state code, in the
//	            per-capacity layout each core documents)
//	bits 8–31 : the seqlock version; bit 8 doubles as the in-flight marker
//
// The shard writer brackets every unit mutation with two version stores:
// seqBegin sets bit 8 (the version goes odd), the key/value registers are
// rewritten through seqStore64, and seqPublish stores the final word — the
// version advanced past even again, with the successor state byte folded in.
// A reader snapshots the word, rejects it if the in-flight bit is set, reads
// the unit's registers, and re-reads the word: any concurrent mutation makes
// the second read differ (odd, or a later version), so the reader retries
// instead of acting on a torn unit. This is the same even/odd trick the
// obs/span per-shard rings use, and it is the software image of the
// register-array discipline the paper leans on — on the switch a stage's
// register row is read or rewritten in one atomic transaction per packet, so
// queries never observe a half-applied update.
//
// Memory-model footing. Readers always load shared words through
// sync/atomic (seqLoad32/seqLoad64): on amd64 these compile to plain MOVs,
// so the read path pays nothing for its safety, and the atomic loads double
// as compiler barriers so the version re-check cannot be reordered or
// cached. The writer's stores are build-dependent (flatseq_fast.go /
// flatseq_portable.go): race-detector builds and non-amd64 targets store
// through sync/atomic too, which makes the protocol explicit to the race
// detector and gives the begin marker the full-barrier semantics weaker
// memory models need; plain amd64 builds use plain stores, relying on
// x86-TSO's total store order (and the compiler's in-order lowering of
// stores) to keep the begin-word / registers / publish-word sequence
// visible in program order. The version-word protocol is identical in both
// builds, so the differential and hammer suites exercise the same state
// machine the fast path serves.
//
// The version field wraps every 2^24 mutations of one unit; a reader would
// have to stall between its two word loads for exactly that many writer
// passes to mistake a recycled version for an unchanged one, which the
// nanosecond-scale read window rules out.
const (
	// flatSeqOdd is the in-flight bit: set by seqBegin, cleared (by
	// advancing the version) at seqPublish.
	flatSeqOdd = 1 << 8
	// flatSeqStep is one full begin+publish version advance.
	flatSeqStep = 2 << 8
	// flatMetaMask extracts the packed state byte from a seqlock word.
	flatMetaMask = 0xff
	// seqSpinMask throttles reader retry loops: after every 64 failed
	// snapshot attempts the reader yields, so a reader pinned to the
	// writer's CPU (GOMAXPROCS=1) cannot livelock against an in-flight
	// update.
	seqSpinMask = 0x3f
)

// seqLoad32 reads a unit's seqlock word. Always atomic — a free MOV on
// amd64 — so reads are race-detector-clean and ordered in every build.
func seqLoad32(p *uint32) uint32 { return atomic.LoadUint32(p) }

// seqLoad64 reads one key or value register. Always atomic, like seqLoad32.
func seqLoad64(p *uint64) uint64 { return atomic.LoadUint64(p) }

// sinkUint64 defeats dead-code elimination of the batch walks' lookahead
// line touches without writing to shared state (the query walk runs on
// concurrent reader goroutines, so a struct-field sink would itself race).
//
//go:noinline
func sinkUint64(uint64) {}
