// Package lru implements the paper's core contribution: the P4LRU cache — a
// pipeline-friendly LRU whose keys are kept in LRU order while values stay in
// fixed slots, with a permutation-valued "cache state" DFA (S_lru) recording
// the key→value mapping (§2.2 of the paper).
//
// The package provides:
//
//   - Unit: the generic P4LRUn unit following Algorithm 1, with the cache
//     state held as an explicit permutation. Reference implementation and the
//     source of truth for differential tests.
//   - Unit2, Unit3: the encoded-state implementations of §2.3.1/§2.3.2 whose
//     state transitions are exactly the stateful-ALU arithmetic deployed on
//     Tofino (XOR/± with a two-way predicate), with the Table 1 encoding.
//   - Unit4: the §2.3.3 extension. The S4 cache state is stored as an
//     (S3 code, 2-bit V4 code) pair via the quotient S4/V4 ≅ S3; the S3 part
//     transitions through tiny lookup tables (≤6 entries, within Tofino's
//     16-entry SALU table budget) and the V4 part through 2-bit XOR.
//   - Ideal: the classical list+map LRU (LRU_IDEAL in the evaluation).
//   - Array: the parallel-connection technique — a hash-indexed array of
//     units giving arbitrary capacity (§1.2, used by all three systems).
//   - Series: the series-connection technique with query/update separation
//     (§3.2, LruIndex), plus the naive immediate-insert mode the paper warns
//     about, kept for the duplicate-entry ablation.
//
// Keys are uint64 (flow IDs, fingerprints, addresses); values are a type
// parameter. All types in this package are single-goroutine: the data plane
// processes one packet at a time per pipeline, and the simulators follow
// that model. Wrap with external locking if sharing across goroutines.
package lru
