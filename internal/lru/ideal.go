package lru

import (
	"container/list"
	"fmt"
)

// Ideal is the classical LRU cache (doubly linked list + hash map), the
// LRU_IDEAL baseline of §4.2. It maintains a single global recency order
// over its whole capacity — the structure the paper shows cannot be built in
// a pipeline, kept here as the upper bound every P4LRU variant is measured
// against.
type Ideal[V any] struct {
	capacity int
	order    *list.List               // front = most recently used
	index    map[uint64]*list.Element // key → list element
	merge    MergeFunc[V]
}

type idealEntry[V any] struct {
	key uint64
	val V
}

// NewIdeal returns an empty ideal LRU cache with the given capacity.
// merge may be nil for replace-on-hit semantics.
func NewIdeal[V any](capacity int, merge MergeFunc[V]) *Ideal[V] {
	if capacity < 1 {
		panic(fmt.Sprintf("lru: ideal capacity %d < 1", capacity))
	}
	return &Ideal[V]{
		capacity: capacity,
		order:    list.New(),
		index:    make(map[uint64]*list.Element, capacity),
		merge:    merge,
	}
}

// Len returns the number of cached entries.
func (c *Ideal[V]) Len() int { return c.order.Len() }

// Cap returns the cache capacity.
func (c *Ideal[V]) Cap() int { return c.capacity }

// Lookup returns the value for k without modifying recency order.
func (c *Ideal[V]) Lookup(k uint64) (V, bool) {
	if e, ok := c.index[k]; ok {
		return e.Value.(*idealEntry[V]).val, true
	}
	var zero V
	return zero, false
}

// Update accesses k: on a hit the entry moves to the front and its value is
// merged; on a miss the entry is admitted, evicting the least recently used
// entry if the cache is full.
func (c *Ideal[V]) Update(k uint64, v V) Result[V] {
	var res Result[V]
	if e, ok := c.index[k]; ok {
		res.Hit = true
		ent := e.Value.(*idealEntry[V])
		if c.merge != nil {
			ent.val = c.merge(ent.val, v)
		} else {
			ent.val = v
		}
		c.order.MoveToFront(e)
		return res
	}
	if c.order.Len() >= c.capacity {
		back := c.order.Back()
		ent := back.Value.(*idealEntry[V])
		res.Evicted = true
		res.EvictedKey = ent.key
		res.EvictedValue = ent.val
		delete(c.index, ent.key)
		c.order.Remove(back)
	}
	c.index[k] = c.order.PushFront(&idealEntry[V]{key: k, val: v})
	return res
}

// InsertTail admits k as the least recently used entry (series-connection
// analog; used when comparing against Series composed of ideal shards).
func (c *Ideal[V]) InsertTail(k uint64, v V) Result[V] {
	var res Result[V]
	if e, ok := c.index[k]; ok {
		res.Hit = true
		e.Value.(*idealEntry[V]).val = v
		return res
	}
	if c.order.Len() >= c.capacity {
		back := c.order.Back()
		ent := back.Value.(*idealEntry[V])
		res.Evicted = true
		res.EvictedKey = ent.key
		res.EvictedValue = ent.val
		delete(c.index, ent.key)
		c.order.Remove(back)
	}
	c.index[k] = c.order.PushBack(&idealEntry[V]{key: k, val: v})
	return res
}

// KeyAt returns the i-th key in LRU order (0 = most recently used).
// O(i); intended for tests.
func (c *Ideal[V]) KeyAt(i int) uint64 {
	if i < 0 || i >= c.order.Len() {
		panic(fmt.Sprintf("lru: KeyAt(%d) with %d entries", i, c.order.Len()))
	}
	e := c.order.Front()
	for ; i > 0; i-- {
		e = e.Next()
	}
	return e.Value.(*idealEntry[V]).key
}

var _ UnitCache[int] = (*Ideal[int])(nil)

// Range calls fn for every cached (key, value) pair in LRU order until fn
// returns false.
func (c *Ideal[V]) Range(fn func(k uint64, v V) bool) {
	for e := c.order.Front(); e != nil; e = e.Next() {
		ent := e.Value.(*idealEntry[V])
		if !fn(ent.key, ent.val) {
			return
		}
	}
}
