//go:build !race && amd64

package lru

// Fast-path writer stores: plain on amd64, where total store order makes
// the begin-word / register / publish-word sequence visible to readers in
// program order (see the protocol comment in flatseq.go). The race-detector
// build swaps in flatseq_portable.go so the same code paths run fully
// atomically under the detector.

// seqBegin marks unit word *p in-flight (version goes odd).
func seqBegin(p *uint32) { *p += flatSeqOdd }

// seqPublish stores the final unit word: version advanced past even again,
// successor state byte folded in.
func seqPublish(p *uint32, w uint32) { *p = w }

// seqStore64 writes one key or value register inside a seqBegin/seqPublish
// bracket.
func seqStore64(p *uint64, v uint64) { *p = v }
