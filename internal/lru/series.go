package lru

import "fmt"

// Series is the series-connection technique (§3.2): L cache arrays linked in
// series to approximate a deeper LRU. It exploits workloads where each key
// traverses the data plane twice (query then reply): the query path is
// read-only across all levels, and only the reply path modifies the cache —
// promoting on a hit, or inserting at level 1 and demoting each level's
// eviction to the tail of the next level on a miss. LruIndex instantiates a
// 4-level series of 2^16-unit P4LRU3 arrays.
//
// The naive alternative — inserting on the query path itself — duplicates
// keys across levels; AccessImmediate implements it for the ablation the
// paper motivates in §3.2.
type Series[V any] struct {
	levels []*Array[V]
}

// NewSeries builds a series of `levels` arrays, each with numUnits units from
// newUnit. Each level gets an independent index-hash (the paper's h_i).
func NewSeries[V any](levels, numUnits int, seed uint64, newUnit func() UnitCache[V]) *Series[V] {
	if levels < 1 {
		panic(fmt.Sprintf("lru: series with %d levels", levels))
	}
	s := &Series[V]{levels: make([]*Array[V], levels)}
	for i := range s.levels {
		s.levels[i] = NewArray(numUnits, seed+uint64(i)*0x9e3779b9, newUnit)
	}
	return s
}

// NewSeries3 builds a series of P4LRU3 arrays (the LruIndex configuration).
func NewSeries3[V any](levels, numUnits int, seed uint64, merge MergeFunc[V]) *Series[V] {
	return NewSeries(levels, numUnits, seed, func() UnitCache[V] { return NewUnit3[V](merge) })
}

// Levels returns the number of series-connected arrays.
func (s *Series[V]) Levels() int { return len(s.levels) }

// Level returns the i-th array (0-based).
func (s *Series[V]) Level(i int) *Array[V] { return s.levels[i] }

// Capacity returns the total entry capacity across levels.
func (s *Series[V]) Capacity() int {
	total := 0
	for _, a := range s.levels {
		total += a.Capacity()
	}
	return total
}

// Len returns the total number of occupied entries across levels.
func (s *Series[V]) Len() int {
	total := 0
	for _, a := range s.levels {
		total += a.Len()
	}
	return total
}

// Query is the read-only query path: it consults every level and returns the
// cached value and the 1-based level that holds k (the packet's cached_flag),
// or level 0 on a miss.
func (s *Series[V]) Query(k uint64) (v V, level int, ok bool) {
	for i, a := range s.levels {
		if val, found := a.Lookup(k); found {
			return val, i + 1, true
		}
	}
	var zero V
	return zero, 0, false
}

// Reply is the cache-modifying reply path. level is the cached_flag returned
// by the earlier Query for the same key:
//
//   - level ≥ 1: the key was cached in that level; it is promoted to the
//     most recent entry of its unit there.
//   - level = 0: the key was absent; it is inserted at level 1 and each
//     level's evicted entry is demoted to the tail of the next level. The
//     entry expelled from the last level leaves the cache entirely and is
//     returned.
func (s *Series[V]) Reply(k uint64, v V, level int) Result[V] {
	if level < 0 || level > len(s.levels) {
		panic(fmt.Sprintf("lru: reply level %d out of range [0,%d]", level, len(s.levels)))
	}
	if level >= 1 {
		return s.levels[level-1].Update(k, v)
	}
	res := s.levels[0].Update(k, v)
	for i := 1; i < len(s.levels) && res.Evicted; i++ {
		res = s.levels[i].InsertTail(res.EvictedKey, res.EvictedValue)
	}
	return res
}

// AccessImmediate is the naive single-pass mode: every access inserts at
// level 1 immediately (no query/update separation), demoting evictions down
// the series. The same key can end up recorded in several levels — the
// duplicate-entry problem §3.2 describes. Returns whether k was cached in
// any level before the insertion.
func (s *Series[V]) AccessImmediate(k uint64, v V) (hit bool) {
	_, _, hit = s.Query(k)
	res := s.levels[0].Update(k, v)
	for i := 1; i < len(s.levels) && res.Evicted; i++ {
		res = s.levels[i].InsertTail(res.EvictedKey, res.EvictedValue)
	}
	return hit
}

// Contains reports whether k is cached in any level and in how many levels —
// the duplication diagnostic for the ablation.
func (s *Series[V]) Contains(k uint64) (levels int) {
	for _, a := range s.levels {
		if _, found := a.Lookup(k); found {
			levels++
		}
	}
	return levels
}

// Range calls fn for every cached (key, value) pair across all levels until
// fn returns false.
func (s *Series[V]) Range(fn func(k uint64, v V) bool) {
	for _, a := range s.levels {
		stopped := false
		a.Range(func(k uint64, v V) bool {
			if !fn(k, v) {
				stopped = true
				return false
			}
			return true
		})
		if stopped {
			return
		}
	}
}
