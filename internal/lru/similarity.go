package lru

import "github.com/p4lru/p4lru/internal/ostat"

// SimilarityTracker computes the paper's LRU-similarity metric (§4.2):
//
//	For each evicted entry, let k be the rank of its last-access time among
//	the last-access times of all cached entries (k = n for the stalest
//	entry). Its relative ranking is k/n; LRU similarity is the mean relative
//	ranking over all evictions. An ideal LRU always scores 1.
//
// Drive it alongside any cache: call Touch for every access the cache admits
// or refreshes, and Evict for every entry the cache expels.
type SimilarityTracker struct {
	seq     int64
	last    map[uint64]int64 // key → last-access sequence number
	set     ostat.Set        // the multiset of last-access sequences (all distinct)
	sum     float64
	samples int
}

// NewSimilarityTracker returns an empty tracker.
func NewSimilarityTracker() *SimilarityTracker {
	return &SimilarityTracker{last: make(map[uint64]int64)}
}

// Touch records an access to key k (the entry is now the most recently used
// from the tracker's point of view).
func (t *SimilarityTracker) Touch(k uint64) {
	t.seq++
	if old, ok := t.last[k]; ok {
		t.set.Delete(old)
	}
	t.last[k] = t.seq
	t.set.Insert(t.seq)
}

// Evict records that the cache expelled key k and accumulates its relative
// ranking. Unknown keys are ignored (defensive; should not happen when Touch
// is called for every admission).
func (t *SimilarityTracker) Evict(k uint64) {
	seq, ok := t.last[k]
	if !ok {
		return
	}
	n := t.set.Len()
	if n > 0 {
		// Rank from the stalest side: the entry with the oldest last-access
		// time has rank n (ideal-LRU victim), the freshest has rank 1.
		older := t.set.Rank(seq) // number of entries accessed at or before seq
		rank := n - older + 1
		t.sum += float64(rank) / float64(n)
		t.samples++
	}
	t.set.Delete(seq)
	delete(t.last, k)
}

// Tracked returns the number of entries currently tracked (cached).
func (t *SimilarityTracker) Tracked() int { return len(t.last) }

// Evictions returns the number of evictions sampled.
func (t *SimilarityTracker) Evictions() int { return t.samples }

// Similarity returns the mean relative ranking over all evictions, or 1 if
// nothing was evicted (an empty cache is vacuously ideal).
func (t *SimilarityTracker) Similarity() float64 {
	if t.samples == 0 {
		return 1
	}
	return t.sum / float64(t.samples)
}
