package lru

import (
	"fmt"

	"github.com/p4lru/p4lru/internal/perm"
)

// MergeFunc combines the cached value with an incoming value on a hit.
// A nil MergeFunc means "replace" (read-cache semantics); write-caches such
// as LruMon use addition.
type MergeFunc[V any] func(old, incoming V) V

// Result reports the outcome of a state-modifying cache access.
type Result[V any] struct {
	// Hit is true when the key was already cached.
	Hit bool
	// Evicted is true when an older entry was expelled to make room.
	Evicted bool
	// EvictedKey/EvictedValue hold the expelled entry when Evicted.
	EvictedKey   uint64
	EvictedValue V
}

// UnitCache is the behaviour shared by Unit, Unit2, Unit3 and Unit4 — a
// single P4LRU cache unit of small fixed capacity. Array and Series build
// larger caches out of UnitCache values.
type UnitCache[V any] interface {
	// Update performs the paper's Algorithm 1: the key becomes the most
	// recently used entry, its value is merged (hit) or stored (miss), and
	// the least recently used entry is evicted when the unit is full.
	Update(k uint64, v V) Result[V]
	// Lookup returns the value mapped to k without modifying the unit.
	Lookup(k uint64) (V, bool)
	// InsertTail stores k as the least recently used entry without touching
	// the cache state — the series-connection demotion path (§3.2). If the
	// unit is full the previous LRU entry is evicted; if k is already
	// present only its value is replaced.
	InsertTail(k uint64, v V) Result[V]
	// Len is the number of occupied entries; Cap is the unit capacity n.
	Len() int
	Cap() int
	// KeyAt returns the i-th key in LRU order (0 = most recently used).
	// It panics if i ≥ Len. For tests, debugging and similarity tracking.
	KeyAt(i int) uint64
}

// Unit is the generic P4LRUn cache unit of Algorithm 1, storing the cache
// state as an explicit permutation. It exists as the readable reference
// implementation and supports any n ≥ 1; the encoded Unit2/Unit3/Unit4 are
// verified against it.
type Unit[V any] struct {
	keys  []uint64
	vals  []V
	state perm.Perm
	size  int
	merge MergeFunc[V]
}

var _ UnitCache[int] = (*Unit[int])(nil)

// NewUnit returns an empty P4LRUn unit of capacity n. merge may be nil for
// replace-on-hit semantics.
func NewUnit[V any](n int, merge MergeFunc[V]) *Unit[V] {
	if n < 1 {
		panic(fmt.Sprintf("lru: unit capacity %d < 1", n))
	}
	return &Unit[V]{
		keys:  make([]uint64, n),
		vals:  make([]V, n),
		state: perm.Identity(n),
		merge: merge,
	}
}

// Len returns the number of occupied entries.
func (u *Unit[V]) Len() int { return u.size }

// Cap returns the unit capacity n.
func (u *Unit[V]) Cap() int { return len(u.keys) }

// KeyAt returns the i-th key in LRU order (0 = most recently used).
func (u *Unit[V]) KeyAt(i int) uint64 {
	if i < 0 || i >= u.size {
		panic(fmt.Sprintf("lru: KeyAt(%d) with %d entries", i, u.size))
	}
	return u.keys[i]
}

// State returns a copy of the cache state permutation S_lru.
func (u *Unit[V]) State() perm.Perm { return u.state.Clone() }

// Lookup scans the key array and returns the value at val[S_lru(i)] for the
// matching position i, without modifying the unit.
func (u *Unit[V]) Lookup(k uint64) (V, bool) {
	for i := 0; i < u.size; i++ {
		if u.keys[i] == k {
			return u.vals[u.state.Apply(i)], true
		}
	}
	var zero V
	return zero, false
}

// Update implements Algorithm 1's three steps:
//
//  1. maintain the key array in LRU order (swap-scan, evicting key[n-1] on a
//     full miss),
//  2. pre-multiply the cache state by the inverse rotation R^-1,
//  3. merge or store the value at val[S_lru(1)].
func (u *Unit[V]) Update(k uint64, v V) Result[V] {
	n := len(u.keys)

	// Step 1: find the rotation endpoint.
	hitPos := -1
	for i := 0; i < u.size; i++ {
		if u.keys[i] == k {
			hitPos = i
			break
		}
	}

	var res Result[V]
	var rot int // 0-based rotation endpoint i of Rotation(n, i)
	switch {
	case hitPos >= 0:
		res.Hit = true
		rot = hitPos
	case u.size < n:
		// Insert into an empty slot: equivalent to a hit on the first free
		// position — the free slot "rotates" to the front.
		rot = u.size
		u.size++
	default:
		// Full miss: evict the least recently used key.
		rot = n - 1
		res.Evicted = true
		res.EvictedKey = u.keys[n-1]
	}

	// Rotate keys[0..rot] forward by one; the incoming key takes position 0.
	copy(u.keys[1:rot+1], u.keys[:rot])
	u.keys[0] = k

	// Step 2: S_lru ← R^-1 × S_lru.
	u.state = perm.RotationInverse(n, rot).Compose(u.state)

	// Step 3: the value slot of the (new) most recently used key.
	slot := u.state.Apply(0)
	if res.Evicted {
		res.EvictedValue = u.vals[slot]
	}
	if res.Hit && u.merge != nil {
		u.vals[slot] = u.merge(u.vals[slot], v)
	} else {
		u.vals[slot] = v
	}
	return res
}

// InsertTail stores k as the least recently used entry (series-connection
// demotion). The cache state is untouched except for value placement.
func (u *Unit[V]) InsertTail(k uint64, v V) Result[V] {
	var res Result[V]
	// Guard against intra-unit duplicates (possible when replies race).
	for i := 0; i < u.size; i++ {
		if u.keys[i] == k {
			res.Hit = true
			u.vals[u.state.Apply(i)] = v
			return res
		}
	}
	if u.size < len(u.keys) {
		u.keys[u.size] = k
		u.vals[u.state.Apply(u.size)] = v
		u.size++
		return res
	}
	last := len(u.keys) - 1
	slot := u.state.Apply(last)
	res.Evicted = true
	res.EvictedKey = u.keys[last]
	res.EvictedValue = u.vals[slot]
	u.keys[last] = k
	u.vals[slot] = v
	return res
}

// Reset empties the unit and restores the identity cache state.
func (u *Unit[V]) Reset() {
	u.size = 0
	u.state = perm.Identity(len(u.keys))
}
