package lru

import (
	"math/rand"
	"testing"
)

func TestArrayBasics(t *testing.T) {
	a := NewArray3[uint64](16, 1, nil)
	if a.Units() != 16 || a.Capacity() != 48 || a.Len() != 0 {
		t.Fatalf("fresh array: units=%d cap=%d len=%d", a.Units(), a.Capacity(), a.Len())
	}
	for k := uint64(0); k < 100; k++ {
		a.Update(k, k*2)
	}
	if a.Len() > a.Capacity() {
		t.Errorf("len %d exceeds capacity %d", a.Len(), a.Capacity())
	}
	// Recently used keys of each unit must be retrievable.
	found := 0
	for k := uint64(0); k < 100; k++ {
		if v, ok := a.Lookup(k); ok {
			if v != k*2 {
				t.Errorf("Lookup(%d) = %d, want %d", k, v, k*2)
			}
			found++
		}
	}
	if found != a.Len() {
		t.Errorf("found %d keys but len is %d", found, a.Len())
	}
}

func TestArrayHashStability(t *testing.T) {
	a := NewArray3[uint64](64, 7, nil)
	// The same key must always address the same unit.
	u1 := a.UnitFor(12345)
	for i := 0; i < 10; i++ {
		if a.UnitFor(12345) != u1 {
			t.Fatal("UnitFor not stable")
		}
	}
	// Different seeds give different placements for at least some keys.
	b := NewArray3[uint64](64, 8, nil)
	moved := 0
	for k := uint64(0); k < 100; k++ {
		a.Update(k, k)
		b.Update(k, k)
	}
	for i := 0; i < 64; i++ {
		// crude placement comparison via lookup success pattern after
		// overflow — just ensure arrays are not trivially identical.
		_ = i
	}
	for k := uint64(0); k < 1000; k++ {
		av, aok := a.Lookup(k)
		bv, bok := b.Lookup(k)
		_ = av
		_ = bv
		if aok != bok {
			moved++
		}
	}
	_ = moved // placement differences are probabilistic; no hard assertion
}

func TestArrayCollisionEviction(t *testing.T) {
	// Single unit: 4th distinct key must evict.
	a := NewArray3[uint64](1, 1, nil)
	for k := uint64(1); k <= 3; k++ {
		if res := a.Update(k, k); res.Evicted {
			t.Fatalf("premature eviction at %d", k)
		}
	}
	res := a.Update(4, 4)
	if !res.Evicted || res.EvictedKey != 1 {
		t.Fatalf("eviction: %+v", res)
	}
}

func TestArrayPanicsOnZeroUnits(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewArray(0) did not panic")
		}
	}()
	NewArray3[uint64](0, 1, nil)
}

func TestSeriesQueryReplyProtocol(t *testing.T) {
	s := NewSeries3[uint64](4, 4, 1, nil)
	if s.Levels() != 4 || s.Capacity() != 4*4*3 {
		t.Fatalf("series shape: levels=%d cap=%d", s.Levels(), s.Capacity())
	}

	// Miss → reply inserts at level 1.
	if _, level, ok := s.Query(100); ok || level != 0 {
		t.Fatalf("fresh query: level=%d ok=%v", level, ok)
	}
	s.Reply(100, 1000, 0)
	v, level, ok := s.Query(100)
	if !ok || level != 1 || v != 1000 {
		t.Fatalf("after insert: v=%d level=%d ok=%v", v, level, ok)
	}

	// Hit at level 1 → promote in place, still level 1.
	s.Reply(100, 1001, level)
	if v, level, ok = s.Query(100); !ok || level != 1 || v != 1001 {
		t.Fatalf("after promote: v=%d level=%d ok=%v", v, level, ok)
	}
}

func TestSeriesDemotionCascade(t *testing.T) {
	// 1 unit per level, capacity 3 per unit: filling level 1 with 4 keys
	// demotes the LRU key to level 2's tail.
	s := NewSeries3[uint64](2, 1, 1, nil)
	for k := uint64(1); k <= 3; k++ {
		s.Reply(k, k*10, 0)
	}
	res := s.Reply(4, 40, 0)
	if res.Evicted {
		t.Fatalf("demotion reported as full eviction: %+v", res)
	}
	// Key 1 must now live at level 2.
	v, level, ok := s.Query(1)
	if !ok || level != 2 || v != 10 {
		t.Fatalf("demoted key: v=%d level=%d ok=%v", v, level, ok)
	}
	// No key may live in two levels after reply-path operations.
	for k := uint64(1); k <= 4; k++ {
		if n := s.Contains(k); n > 1 {
			t.Errorf("key %d present in %d levels", k, n)
		}
	}
}

func TestSeriesFullExpulsion(t *testing.T) {
	// 2 levels × 1 unit × 3 entries = 6 slots; the 7th insert expels one
	// entry completely.
	s := NewSeries3[uint64](2, 1, 1, nil)
	for k := uint64(1); k <= 6; k++ {
		if res := s.Reply(k, k, 0); res.Evicted {
			t.Fatalf("premature expulsion at key %d: %+v", k, res)
		}
	}
	res := s.Reply(7, 7, 0)
	if !res.Evicted {
		t.Fatal("7th insert did not expel")
	}
	if s.Len() != 6 {
		t.Errorf("len = %d, want 6", s.Len())
	}
	if n := s.Contains(res.EvictedKey); n != 0 {
		t.Errorf("expelled key still present in %d levels", n)
	}
}

// TestSeriesNoDuplicatesUnderReplyPath: the §3.2 claim — query/update
// separation keeps every key in at most one level — verified on a random
// workload.
func TestSeriesNoDuplicatesUnderReplyPath(t *testing.T) {
	s := NewSeries3[uint64](4, 8, 1, nil)
	r := rand.New(rand.NewSource(5))
	for step := 0; step < 20000; step++ {
		k := uint64(r.Intn(200))
		_, level, _ := s.Query(k)
		s.Reply(k, uint64(step), level)
		if n := s.Contains(k); n != 1 {
			t.Fatalf("step %d: key %d in %d levels", step, k, n)
		}
	}
}

// TestSeriesImmediateModeCreatesDuplicates: the naive single-pass mode the
// paper warns about must actually exhibit the duplicate-entry pathology
// (this is the premise of the series-connection design).
func TestSeriesImmediateModeCreatesDuplicates(t *testing.T) {
	s := NewSeries3[uint64](4, 8, 1, nil)
	r := rand.New(rand.NewSource(5))
	dupes := 0
	for step := 0; step < 20000; step++ {
		k := uint64(r.Intn(200))
		s.AccessImmediate(k, uint64(step))
		if s.Contains(k) > 1 {
			dupes++
		}
	}
	if dupes == 0 {
		t.Error("immediate mode never produced a duplicate — ablation premise broken")
	}
}

// TestSeriesHitRateBeatsImmediate: with equal hardware the reply-path series
// should achieve at least the hit rate of the duplicate-prone naive mode on
// a skewed workload.
func TestSeriesHitRateBeatsImmediate(t *testing.T) {
	run := func(immediate bool) float64 {
		s := NewSeries3[uint64](4, 32, 1, nil)
		r := rand.New(rand.NewSource(42))
		zipf := rand.NewZipf(r, 1.2, 1, 2000)
		hits, total := 0, 0
		for step := 0; step < 50000; step++ {
			k := zipf.Uint64()
			total++
			if immediate {
				if s.AccessImmediate(k, uint64(step)) {
					hits++
				}
			} else {
				_, level, ok := s.Query(k)
				if ok {
					hits++
				}
				s.Reply(k, uint64(step), level)
			}
		}
		return float64(hits) / float64(total)
	}
	sep, naive := run(false), run(true)
	if sep < naive {
		t.Errorf("separated series hit rate %.4f < naive %.4f", sep, naive)
	}
}

func TestSeriesReplyPanicsOnBadLevel(t *testing.T) {
	s := NewSeries3[uint64](2, 1, 1, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("Reply with level 3 did not panic")
		}
	}()
	s.Reply(1, 1, 3)
}

func TestSeriesPanicsOnZeroLevels(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSeries(0 levels) did not panic")
		}
	}()
	NewSeries3[uint64](0, 4, 1, nil)
}

func BenchmarkArrayUpdate(b *testing.B) {
	a := NewArray3[uint64](1<<16, 1, nil)
	r := rand.New(rand.NewSource(1))
	zipf := rand.NewZipf(r, 1.1, 1, 1<<20)
	keys := make([]uint64, 1<<16)
	for i := range keys {
		keys[i] = zipf.Uint64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Update(keys[i&(1<<16-1)], uint64(i))
	}
}

func BenchmarkSeriesQueryReply(b *testing.B) {
	s := NewSeries3[uint64](4, 1<<14, 1, nil)
	r := rand.New(rand.NewSource(1))
	zipf := rand.NewZipf(r, 1.1, 1, 1<<20)
	keys := make([]uint64, 1<<16)
	for i := range keys {
		keys[i] = zipf.Uint64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i&(1<<16-1)]
		_, level, _ := s.Query(k)
		s.Reply(k, uint64(i), level)
	}
}
