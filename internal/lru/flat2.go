package lru

import (
	"fmt"
	"runtime"

	"github.com/p4lru/p4lru/internal/hashing"
)

// FlatArray2 is the parallel-connection array of P4LRU2 units (§2.3.1) in
// the same struct-of-arrays, seqlock-versioned layout as FlatArray3:
//
//	keys : []uint64, 2 per unit — the key registers of stages 1–2
//	vals : []uint64, 2 per unit — the value registers of stages 1–2
//	meta : []uint32, 1 per unit — the seqlock word: version<<8 | packed
//	       state byte (bit 0 the one-bit swap state, bits 1–2 the occupancy)
//
// The one-bit state encodes the key→value permutation: state 0 is the
// identity, state 1 the swap, so the value slot of key position i is simply
// i XOR state — the single-stateful-ALU transition of §2.3.1. FlatArray2 is
// behaviourally identical to NewArray with Unit2 units and the same seed
// (the differential tests pin it); concurrency follows the FlatArray3
// contract: one writer, wait-free concurrent readers.
type FlatArray2 struct {
	keys  []uint64 // len 2·units, keys[2u..2u+1] in LRU order (0 = MRU)
	vals  []uint64 // len 2·units, slots permuted by the unit state bit
	meta  []uint32 // len units, seqlock word (version<<8 | state byte)
	hash  hashing.Hash
	merge MergeFunc[uint64]

	// batchUnits is the writer's batch-walk scratch (see FlatArray3).
	batchUnits []int32
}

const (
	flat2StateMask = 0x01 // bit 0: the State2 swap bit
	flat2SizeShift = 1    // bits 1–2: occupancy (0–2)
)

// NewFlatArray2 builds a flat array of numUnits empty P4LRU2 units. seed
// selects the index-hash family member exactly as the generic constructors
// do; merge may be nil for replace-on-hit semantics.
func NewFlatArray2(numUnits int, seed uint64, merge MergeFunc[uint64]) *FlatArray2 {
	if numUnits < 1 {
		panic(fmt.Sprintf("lru: flat array with %d units", numUnits))
	}
	return &FlatArray2{
		keys:  make([]uint64, 2*numUnits),
		vals:  make([]uint64, 2*numUnits),
		meta:  make([]uint32, numUnits),
		hash:  hashing.New(seed),
		merge: merge,
	}
}

// Units returns the number of units.
func (a *FlatArray2) Units() int { return len(a.meta) }

// UnitCap returns 2.
func (a *FlatArray2) UnitCap() int { return 2 }

// Capacity returns the total entry capacity (2 per unit).
func (a *FlatArray2) Capacity() int { return 2 * len(a.meta) }

// Len returns the total number of occupied entries across all units.
func (a *FlatArray2) Len() int {
	total := 0
	for u := range a.meta {
		total += int(seqLoad32(&a.meta[u])&flatMetaMask) >> flat2SizeShift
	}
	return total
}

// UnitIndex returns the unit addressed by h(k).
func (a *FlatArray2) UnitIndex(k uint64) int {
	return a.hash.Index(k, len(a.meta))
}

// UnitLen returns the occupancy of unit u.
func (a *FlatArray2) UnitLen(u int) int {
	return int(seqLoad32(&a.meta[u])&flatMetaMask) >> flat2SizeShift
}

// UnitState returns the one-bit cache state of unit u.
func (a *FlatArray2) UnitState(u int) State2 {
	return State2(seqLoad32(&a.meta[u]) & flat2StateMask)
}

// UnitKeyAt returns the i-th key of unit u in LRU order (0 = most recently
// used); writer-quiescent use only, like FlatArray3.UnitKeyAt.
func (a *FlatArray2) UnitKeyAt(u, i int) uint64 {
	if i < 0 || i >= a.UnitLen(u) {
		panic(fmt.Sprintf("lru: UnitKeyAt(%d) with %d entries", i, a.UnitLen(u)))
	}
	return seqLoad64(&a.keys[2*u+i])
}

// Lookup returns the value for k without modifying the array. Safe
// concurrent with the writer.
func (a *FlatArray2) Lookup(k uint64) (uint64, bool) {
	return a.lookupInUnit(a.UnitIndex(k), k)
}

func (a *FlatArray2) lookupInUnit(u int, k uint64) (uint64, bool) {
	base := 2 * u
	kk := a.keys[base : base+2 : base+2]
	vv := a.vals[base : base+2 : base+2]
	for spin := 0; ; spin++ {
		w := seqLoad32(&a.meta[u])
		if w&flatSeqOdd == 0 {
			size := int(w&flatMetaMask) >> flat2SizeShift
			state := int(w & flat2StateMask)
			var v uint64
			found := false
			for i := 0; i < size; i++ {
				if seqLoad64(&kk[i]) == k {
					v = seqLoad64(&vv[i^state])
					found = true
					break
				}
			}
			if seqLoad32(&a.meta[u]) == w {
				return v, found
			}
		}
		if spin&seqSpinMask == seqSpinMask {
			runtime.Gosched()
		}
	}
}

// Update inserts or refreshes k in its unit: Algorithm 1 specialized to
// n=2, the slab form of Unit2.Update with seqlock-bracketed rewrites.
func (a *FlatArray2) Update(k, v uint64) Result[uint64] {
	return a.updateInUnit(a.UnitIndex(k), k, v)
}

func (a *FlatArray2) updateInUnit(u int, k, v uint64) Result[uint64] {
	var res Result[uint64]
	base := 2 * u
	kk := a.keys[base : base+2 : base+2]
	w := a.meta[u]
	m := uint8(w)
	state := m & flat2StateMask
	size := m >> flat2SizeShift

	// op 0: hit on position 0 (no state change); op 1: everything that
	// rotates — hit on position 1, insert into slot 1, or full-miss evict.
	var op uint8
	switch {
	case size > 0 && kk[0] == k:
		res.Hit = true
		op = 0
	case size > 1 && kk[1] == k:
		res.Hit = true
		op = 1
	case size < 2:
		op = size
	default:
		op = 1
		res.Evicted = true
		res.EvictedKey = kk[1]
	}

	newSize := size
	if !res.Hit && size < 2 {
		newSize = size + 1
	}
	newState := state
	if op == 1 {
		newState ^= 1 // State2Op2
	}
	nm := newState | newSize<<flat2SizeShift

	slot := base + int(newState) // valPos(0) under the new state
	if res.Evicted {
		res.EvictedValue = a.vals[slot]
	}
	nv := v
	if res.Hit && a.merge != nil {
		nv = a.merge(a.vals[slot], v)
	}

	seqBegin(&a.meta[u])
	if op == 1 {
		seqStore64(&kk[1], kk[0])
	}
	seqStore64(&kk[0], k)
	seqStore64(&a.vals[slot], nv)
	seqPublish(&a.meta[u], (w+flatSeqStep)&^uint32(flatMetaMask)|uint32(nm))
	return res
}

// InsertTail stores k as the least recently used entry of its unit without
// a state transition (§3.2 demotion) — the slab form of Unit2.InsertTail.
func (a *FlatArray2) InsertTail(k, v uint64) Result[uint64] {
	u := a.UnitIndex(k)
	var res Result[uint64]
	base := 2 * u
	w := a.meta[u]
	m := uint8(w)
	state := int(m & flat2StateMask)
	size := m >> flat2SizeShift

	for i := 0; i < int(size); i++ {
		if a.keys[base+i] == k {
			res.Hit = true
			seqBegin(&a.meta[u])
			seqStore64(&a.vals[base+(i^state)], v)
			seqPublish(&a.meta[u], w+flatSeqStep)
			return res
		}
	}
	if size < 2 {
		seqBegin(&a.meta[u])
		seqStore64(&a.keys[base+int(size)], k)
		seqStore64(&a.vals[base+(int(size)^state)], v)
		seqPublish(&a.meta[u], w+flatSeqStep+1<<flat2SizeShift)
		return res
	}
	slot := base + (1 ^ state)
	res.Evicted = true
	res.EvictedKey = a.keys[base+1]
	res.EvictedValue = a.vals[slot]
	seqBegin(&a.meta[u])
	seqStore64(&a.keys[base+1], k)
	seqStore64(&a.vals[slot], v)
	seqPublish(&a.meta[u], w+flatSeqStep)
	return res
}

// units ensures the writer's batch scratch covers n ops and returns it.
func (a *FlatArray2) units(n int) []int32 {
	if cap(a.batchUnits) < n {
		a.batchUnits = make([]int32, n)
	}
	return a.batchUnits[:n]
}

// QueryBatch looks up every keys[i] — the FlatArray3.QueryBatch walk over
// 2-wide units. Safe concurrent with the writer and with other readers.
func (a *FlatArray2) QueryBatch(keys []uint64, vals []uint64, oks []bool) {
	var units [flatQueryChunk]int32
	var touched uint64
	for start := 0; start < len(keys); start += flatQueryChunk {
		part := keys[start:min(start+flatQueryChunk, len(keys))]
		for i, k := range part {
			units[i] = int32(a.UnitIndex(k))
		}
		for i, k := range part {
			if j := i + batchLookahead; j < len(part) {
				touched += seqLoad64(&a.keys[2*units[j]])
			}
			vals[start+i], oks[start+i] = a.lookupInUnit(int(units[i]), k)
		}
	}
	sinkUint64(touched)
}

// UpdateBatch applies Update(keys[i], vals[i]) for every i in order and
// reports the hit and eviction totals — the FlatArray3.UpdateBatch walk.
func (a *FlatArray2) UpdateBatch(keys, vals []uint64) (hits, evictions int) {
	units := a.units(len(keys))
	for i, k := range keys {
		units[i] = int32(a.UnitIndex(k))
	}
	var touched uint64
	for i, k := range keys {
		if j := i + batchLookahead; j < len(units) {
			touched += seqLoad64(&a.keys[2*units[j]])
		}
		res := a.updateInUnit(int(units[i]), k, vals[i])
		if res.Hit {
			hits++
		}
		if res.Evicted {
			evictions++
		}
	}
	sinkUint64(touched)
	return hits, evictions
}

// Range calls fn for every cached (key, value) pair until fn returns false,
// in unit order then LRU order; per-unit seqlock snapshots like
// FlatArray3.Range.
func (a *FlatArray2) Range(fn func(k, v uint64) bool) {
	var ks, vs [2]uint64
	for u := range a.meta {
		base := 2 * u
		size := 0
		for spin := 0; ; spin++ {
			w := seqLoad32(&a.meta[u])
			if w&flatSeqOdd == 0 {
				size = int(w&flatMetaMask) >> flat2SizeShift
				state := int(w & flat2StateMask)
				for i := 0; i < size; i++ {
					ks[i] = seqLoad64(&a.keys[base+i])
					vs[i] = seqLoad64(&a.vals[base+(i^state)])
				}
				if seqLoad32(&a.meta[u]) == w {
					break
				}
			}
			if spin&seqSpinMask == seqSpinMask {
				runtime.Gosched()
			}
		}
		for i := 0; i < size; i++ {
			if !fn(ks[i], vs[i]) {
				return
			}
		}
	}
}

// Reset empties every unit and restores the initial cache state, under the
// per-unit seqlock brackets.
func (a *FlatArray2) Reset() {
	for u := range a.meta {
		base := 2 * u
		w := a.meta[u]
		seqBegin(&a.meta[u])
		for i := 0; i < 2; i++ {
			seqStore64(&a.keys[base+i], 0)
			seqStore64(&a.vals[base+i], 0)
		}
		seqPublish(&a.meta[u], (w+flatSeqStep)&^uint32(flatMetaMask))
	}
}
