package lru

import (
	"math/rand"
	"testing"
)

// flatBenchUnits is the array size all three deployed systems use (Table 2):
// 2^16 P4LRU3 units.
const flatBenchUnits = 1 << 16

// flatBenchKeys is a uniform random key stream: accesses spread across all
// 2^16 units, the memory-latency-bound regime the flat layout exists for
// (and the worst case for both cores — a skewed stream only keeps more
// units in cache). 64-bit keys, far more distinct keys than entries, so the
// steady state mixes inserts, hits and evictions.
func flatBenchKeys() []uint64 {
	rng := rand.New(rand.NewSource(1))
	keys := make([]uint64, 1<<16)
	for i := range keys {
		keys[i] = rng.Uint64()
	}
	return keys
}

// BenchmarkFlatVsGeneric replays the same update stream through the generic
// interface-based array and the struct-of-arrays core at 2^16 units:
//
//	core=generic    — Array of *Unit3 behind UnitCache, one Update per op
//	                  (the old engine writer loop)
//	core=flat       — FlatArray3 scalar Update per op
//	core=flat-batch — FlatArray3.UpdateBatch over 256-op batches (the walk
//	                  the engine's shard writers apply)
//
// The flat batch walk must be ≥2× the generic ops/sec with 0 allocs/op;
// `make bench` records the result in BENCH_3.json and CI fails if the flat
// core regresses below the generic one.
func BenchmarkFlatVsGeneric(b *testing.B) {
	keys := flatBenchKeys()
	mask := uint64(len(keys) - 1)

	b.Run("core=generic", func(b *testing.B) {
		a := NewArray3[uint64](flatBenchUnits, 1, nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k := keys[uint64(i)&mask]
			a.Update(k, k)
		}
	})
	b.Run("core=flat", func(b *testing.B) {
		a := NewFlatArray3(flatBenchUnits, 1, nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k := keys[uint64(i)&mask]
			a.Update(k, k)
		}
	})
	b.Run("core=flat-batch", func(b *testing.B) {
		a := NewFlatArray3(flatBenchUnits, 1, nil)
		const batch = 256
		vals := make([]uint64, batch)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i += batch {
			lo := uint64(i) & mask
			end := lo + batch
			if end > uint64(len(keys)) {
				end = uint64(len(keys))
			}
			ks := keys[lo:end]
			a.UpdateBatch(ks, vals[:len(ks)])
		}
	})
}

// BenchmarkFlatQuery isolates the read path of both cores over a warmed
// array.
func BenchmarkFlatQuery(b *testing.B) {
	keys := flatBenchKeys()
	mask := uint64(len(keys) - 1)

	b.Run("core=generic", func(b *testing.B) {
		a := NewArray3[uint64](flatBenchUnits, 1, nil)
		for _, k := range keys {
			a.Update(k, k)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a.Lookup(keys[uint64(i)&mask])
		}
	})
	b.Run("core=flat", func(b *testing.B) {
		a := NewFlatArray3(flatBenchUnits, 1, nil)
		for _, k := range keys {
			a.Update(k, k)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a.Lookup(keys[uint64(i)&mask])
		}
	})
	b.Run("core=flat-batch", func(b *testing.B) {
		a := NewFlatArray3(flatBenchUnits, 1, nil)
		for _, k := range keys {
			a.Update(k, k)
		}
		const batch = 256
		vals := make([]uint64, batch)
		oks := make([]bool, batch)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i += batch {
			lo := uint64(i) & mask
			end := lo + batch
			if end > uint64(len(keys)) {
				end = uint64(len(keys))
			}
			ks := keys[lo:end]
			a.QueryBatch(ks, vals[:len(ks)], oks[:len(ks)])
		}
	})
}
