//go:build race || !amd64

package lru

import "sync/atomic"

// Portable writer stores: fully atomic. Race-detector builds use these so
// the seqlock protocol is explicit to the detector (the hammer tests run
// the real reader/writer interleavings under -race), and non-amd64 targets
// use them for ordering — seqBegin is a read-modify-write, which on arm64
// is a full barrier, so the register stores that follow cannot become
// visible before the in-flight marker.

// seqBegin marks unit word *p in-flight (version goes odd).
func seqBegin(p *uint32) { atomic.AddUint32(p, flatSeqOdd) }

// seqPublish stores the final unit word: version advanced past even again,
// successor state byte folded in.
func seqPublish(p *uint32, w uint32) { atomic.StoreUint32(p, w) }

// seqStore64 writes one key or value register inside a seqBegin/seqPublish
// bracket.
func seqStore64(p *uint64, v uint64) { atomic.StoreUint64(p, v) }
