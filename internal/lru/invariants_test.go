package lru

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// checkUnitInvariants asserts the structural invariants of any unit: keys
// are distinct, the occupancy never exceeds capacity, and the generic unit's
// state is a valid permutation.
func checkUnitInvariants(t *testing.T, u UnitCache[uint64]) {
	t.Helper()
	if u.Len() > u.Cap() {
		t.Fatalf("len %d exceeds cap %d", u.Len(), u.Cap())
	}
	seen := map[uint64]bool{}
	for i := 0; i < u.Len(); i++ {
		k := u.KeyAt(i)
		if seen[k] {
			t.Fatalf("duplicate key %d in unit", k)
		}
		seen[k] = true
		if _, ok := u.Lookup(k); !ok {
			t.Fatalf("resident key %d not found by Lookup", k)
		}
	}
}

// TestUnitInvariantsUnderRandomOps: mixed Update/InsertTail streams keep the
// structural invariants and the mapping correctness (last write wins) for
// every unit implementation.
func TestUnitInvariantsUnderRandomOps(t *testing.T) {
	impls := map[string]func() UnitCache[uint64]{
		"generic3": func() UnitCache[uint64] { return NewUnit[uint64](3, nil) },
		"generic5": func() UnitCache[uint64] { return NewUnit[uint64](5, nil) },
		"unit2":    func() UnitCache[uint64] { return NewUnit2[uint64](nil) },
		"unit3":    func() UnitCache[uint64] { return NewUnit3[uint64](nil) },
		"unit4":    func() UnitCache[uint64] { return NewUnit4[uint64](nil) },
	}
	for name, mk := range impls {
		t.Run(name, func(t *testing.T) {
			u := mk()
			stored := map[uint64]uint64{}
			r := rand.New(rand.NewSource(11))
			for step := 0; step < 30000; step++ {
				k := uint64(r.Intn(12) + 1)
				v := uint64(step + 1)
				var res Result[uint64]
				if r.Intn(4) == 0 {
					res = u.InsertTail(k, v)
				} else {
					res = u.Update(k, v)
				}
				stored[k] = v
				if res.Evicted {
					delete(stored, res.EvictedKey)
				}
				if step%100 == 0 {
					checkUnitInvariants(t, u)
				}
				// Mapping correctness: a resident key's value is its last
				// written one.
				if got, ok := u.Lookup(k); !ok || got != v {
					t.Fatalf("step %d: Lookup(%d) = %d,%v want %d", step, k, got, ok, v)
				}
			}
			// Final cross-check: everything tracked is present with the
			// right value, and nothing else is.
			if len(stored) != u.Len() {
				t.Fatalf("tracked %d keys, unit holds %d", len(stored), u.Len())
			}
			for k, v := range stored {
				if got, ok := u.Lookup(k); !ok || got != v {
					t.Fatalf("final: Lookup(%d) = %d,%v want %d", k, got, ok, v)
				}
			}
		})
	}
}

// TestUnitStateStaysPermutation: the generic unit's cache state remains a
// bijection (quick.Check over random op streams).
func TestUnitStateStaysPermutation(t *testing.T) {
	f := func(ops []uint16) bool {
		u := NewUnit[uint64](4, nil)
		for i, op := range ops {
			k := uint64(op%9) + 1
			if op%5 == 0 {
				u.InsertTail(k, uint64(i))
			} else {
				u.Update(k, uint64(i))
			}
			st := u.State()
			seen := make([]bool, st.Len())
			for j := 0; j < st.Len(); j++ {
				img := st.Apply(j)
				if img < 0 || img >= st.Len() || seen[img] {
					return false
				}
				seen[img] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestSeriesConservation: under the reply-path protocol, every key is either
// resident in exactly one level or has been expelled; residency count never
// exceeds capacity; a resident key's value is its last write.
func TestSeriesConservation(t *testing.T) {
	s := NewSeries3[uint64](3, 8, 13, nil)
	stored := map[uint64]uint64{}
	r := rand.New(rand.NewSource(17))
	for step := 0; step < 40000; step++ {
		k := uint64(r.Intn(300) + 1)
		v := uint64(step + 1)
		_, level, _ := s.Query(k)
		res := s.Reply(k, v, level)
		stored[k] = v
		if res.Evicted {
			delete(stored, res.EvictedKey)
		}
		if s.Len() > s.Capacity() {
			t.Fatalf("step %d: len %d exceeds capacity %d", step, s.Len(), s.Capacity())
		}
		if n := s.Contains(k); n != 1 {
			t.Fatalf("step %d: key %d resident in %d levels", step, k, n)
		}
	}
	if len(stored) != s.Len() {
		t.Fatalf("tracked %d keys, series holds %d", len(stored), s.Len())
	}
	for k, v := range stored {
		got, _, ok := s.Query(k)
		if !ok || got != v {
			t.Fatalf("final: Query(%d) = %d,%v want %d", k, got, ok, v)
		}
	}
}

// TestArrayRangeMatchesLookups: Range enumerates exactly the resident
// entries with their current values.
func TestArrayRangeMatchesLookups(t *testing.T) {
	a := NewArray3[uint64](32, 3, nil)
	r := rand.New(rand.NewSource(19))
	for step := 0; step < 5000; step++ {
		a.Update(uint64(r.Intn(500)+1), uint64(step))
	}
	count := 0
	a.Range(func(k uint64, v uint64) bool {
		count++
		got, ok := a.Lookup(k)
		if !ok || got != v {
			t.Fatalf("Range pair (%d,%d) not confirmed by Lookup (%d,%v)", k, v, got, ok)
		}
		return true
	})
	if count != a.Len() {
		t.Fatalf("Range visited %d, Len %d", count, a.Len())
	}
	// Early stop works.
	visited := 0
	a.Range(func(k, v uint64) bool {
		visited++
		return visited < 5
	})
	if visited != 5 {
		t.Errorf("early stop visited %d", visited)
	}
}
