package lru

import (
	"fmt"

	"github.com/p4lru/p4lru/internal/perm"
)

// Unit4 is the P4LRU4 extension sketched in §2.3.3. The 24-element cache
// state (an element of S4) is stored as a pair
//
//	(s3 code, v4 code) ∈ {0..5} × {0..3}
//
// through the unique factorization g = r(k)·h with k ∈ S3 (the quotient
// S4/V4 ≅ S3) and h ∈ V4 = C2 × C2. The s3 part reuses the Table 1 code of
// P4LRU3 and transitions through a ≤6-entry lookup (within Tofino's
// 16-entry SALU table budget); the v4 part transitions by a 2-bit XOR whose
// operand depends on the operation and the current s3 code — exactly the
// "more nuanced logic" the paper predicts for P4LRU4.
type Unit4[V any] struct {
	keys  [4]uint64
	vals  [4]V
	s3    State3 // Table 1 code of the quotient image
	v4    uint8  // index into perm.V4Elements
	size  uint8
	merge MergeFunc[V]
}

var _ UnitCache[int] = (*Unit4[int])(nil)

// unit4Tables holds the precomputed transition and decode tables. They are
// derived once from the group algebra in internal/perm; the derivation is
// itself exercised by differential tests against the generic Unit.
var unit4Tables = func() (t struct {
	s3Next [4][6]State3   // s3Next[op][s3] — quotient transition
	v4Xor  [4][6]uint8    // v4Xor[op][s3] — V4 correction, XORed in
	valPos [6][4][4]uint8 // valPos[s3][v4][keyPos] = S(keyPos)
}) {
	for op := 0; op < 4; op++ {
		a := perm.RotationInverse(4, op)
		for c := 0; c < 6; c++ {
			k := state3Perms[c]
			k2, h2 := perm.LeftMulS4Pair(a, k, 0)
			t.s3Next[op][c] = State3Encode(k2)
			t.v4Xor[op][c] = uint8(h2)
		}
	}
	for c := 0; c < 6; c++ {
		for h := 0; h < 4; h++ {
			g := perm.EmbedS3(state3Perms[c]).Compose(perm.V4Elements[h])
			for i := 0; i < 4; i++ {
				t.valPos[c][h][i] = uint8(g.Apply(i))
			}
		}
	}
	return
}()

// NewUnit4 returns an empty P4LRU4 unit. merge may be nil for replace-on-hit
// semantics.
func NewUnit4[V any](merge MergeFunc[V]) *Unit4[V] {
	return &Unit4[V]{s3: State3Initial, merge: merge}
}

// Len returns the number of occupied entries.
func (u *Unit4[V]) Len() int { return int(u.size) }

// Cap returns 4.
func (u *Unit4[V]) Cap() int { return 4 }

// State returns the full S4 cache state reconstructed from the pair encoding.
func (u *Unit4[V]) State() perm.Perm {
	return perm.S4Decomposition{K: State3Decode(u.s3), H: int(u.v4)}.Recompose()
}

// StatePair returns the raw (s3 code, v4 code) pair.
func (u *Unit4[V]) StatePair() (State3, uint8) { return u.s3, u.v4 }

// KeyAt returns the i-th key in LRU order (0 = most recently used).
func (u *Unit4[V]) KeyAt(i int) uint64 {
	if i < 0 || i >= int(u.size) {
		panic(fmt.Sprintf("lru: KeyAt(%d) with %d entries", i, u.size))
	}
	return u.keys[i]
}

func (u *Unit4[V]) valPos(i int) int {
	return int(unit4Tables.valPos[u.s3][u.v4][i])
}

// Lookup returns the value mapped to k without modifying the unit.
func (u *Unit4[V]) Lookup(k uint64) (V, bool) {
	for i := 0; i < int(u.size); i++ {
		if u.keys[i] == k {
			return u.vals[u.valPos(i)], true
		}
	}
	var zero V
	return zero, false
}

// Update is Algorithm 1 specialized to n=4 with pair-encoded transitions.
func (u *Unit4[V]) Update(k uint64, v V) Result[V] {
	var res Result[V]

	hitPos := -1
	for i := 0; i < int(u.size); i++ {
		if u.keys[i] == k {
			hitPos = i
			break
		}
	}

	var op int
	switch {
	case hitPos >= 0:
		res.Hit = true
		op = hitPos
	case u.size < 4:
		op = int(u.size)
		u.size++
	default:
		op = 3
		res.Evicted = true
		res.EvictedKey = u.keys[3]
	}

	copy(u.keys[1:op+1], u.keys[:op])
	u.keys[0] = k

	u.v4 ^= unit4Tables.v4Xor[op][u.s3]
	u.s3 = unit4Tables.s3Next[op][u.s3]

	slot := u.valPos(0)
	if res.Evicted {
		res.EvictedValue = u.vals[slot]
	}
	if res.Hit && u.merge != nil {
		u.vals[slot] = u.merge(u.vals[slot], v)
	} else {
		u.vals[slot] = v
	}
	return res
}

// InsertTail stores k as the least recently used entry without a state
// transition.
func (u *Unit4[V]) InsertTail(k uint64, v V) Result[V] {
	var res Result[V]
	for i := 0; i < int(u.size); i++ {
		if u.keys[i] == k {
			res.Hit = true
			u.vals[u.valPos(i)] = v
			return res
		}
	}
	if u.size < 4 {
		u.keys[u.size] = k
		u.vals[u.valPos(int(u.size))] = v
		u.size++
		return res
	}
	slot := u.valPos(3)
	res.Evicted = true
	res.EvictedKey = u.keys[3]
	res.EvictedValue = u.vals[slot]
	u.keys[3] = k
	u.vals[slot] = v
	return res
}

// Reset empties the unit and restores the initial state.
func (u *Unit4[V]) Reset() {
	u.size = 0
	u.s3 = State3Initial
	u.v4 = 0
}
