package lru

import "fmt"

// FlatCore is the interface of the flat struct-of-arrays serving cores
// (FlatArray2, FlatArray3, FlatArray4): concrete uint64 key/value slabs
// with seqlock-versioned units, one writer, wait-free concurrent readers.
// FlatSeries composes levels of it, and the policy layer builds the default
// serving cache for every P4LRU spec kind on top of it; the generic
// Array/Unit types remain the differential oracle.
type FlatCore interface {
	// Units is the unit count; UnitCap the per-unit entry capacity;
	// Capacity their product; Len the current occupancy.
	Units() int
	UnitCap() int
	Capacity() int
	Len() int
	// UnitIndex is the paper's per-packet register index h(k).
	UnitIndex(k uint64) int
	// Lookup and QueryBatch are the wait-free read paths, safe concurrent
	// with the single writer.
	Lookup(k uint64) (uint64, bool)
	QueryBatch(keys []uint64, vals []uint64, oks []bool)
	// Update, InsertTail, UpdateBatch and Reset are writer operations; the
	// caller serializes them.
	Update(k, v uint64) Result[uint64]
	InsertTail(k, v uint64) Result[uint64]
	UpdateBatch(keys, vals []uint64) (hits, evictions int)
	Reset()
	// Range snapshots each unit through its seqlock, so fn never sees a
	// torn unit.
	Range(fn func(k, v uint64) bool)
}

var (
	_ FlatCore = (*FlatArray2)(nil)
	_ FlatCore = (*FlatArray3)(nil)
	_ FlatCore = (*FlatArray4)(nil)
)

// NewFlatCore builds the flat array for unit capacity 2, 3 or 4 — the three
// data-plane unit designs of §2.3. Other capacities have no flat core (the
// generic Array serves them) and panic.
func NewFlatCore(unitCap, numUnits int, seed uint64, merge MergeFunc[uint64]) FlatCore {
	switch unitCap {
	case 2:
		return NewFlatArray2(numUnits, seed, merge)
	case 3:
		return NewFlatArray3(numUnits, seed, merge)
	case 4:
		return NewFlatArray4(numUnits, seed, merge)
	default:
		panic(fmt.Sprintf("lru: no flat core for unit capacity %d", unitCap))
	}
}
