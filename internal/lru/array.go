package lru

import (
	"fmt"

	"github.com/p4lru/p4lru/internal/hashing"
)

// Array is the parallel-connection technique (§1.2): a hash function h(·)
// selects one of m small P4LRU units, replacing the buckets of a plain hash
// table with P4LRU units to reach arbitrary capacity. All three systems use
// arrays of 2^16 or 2^17 P4LRU3 units.
type Array[V any] struct {
	units []UnitCache[V]
	hash  hashing.Hash
}

// NewArray builds an array of numUnits units, each produced by newUnit.
// seed selects the member of the index-hash family.
func NewArray[V any](numUnits int, seed uint64, newUnit func() UnitCache[V]) *Array[V] {
	if numUnits < 1 {
		panic(fmt.Sprintf("lru: array with %d units", numUnits))
	}
	a := &Array[V]{
		units: make([]UnitCache[V], numUnits),
		hash:  hashing.New(seed),
	}
	for i := range a.units {
		a.units[i] = newUnit()
	}
	return a
}

// NewArray3 builds an array of P4LRU3 units — the configuration used by
// LruTable, LruIndex and LruMon.
func NewArray3[V any](numUnits int, seed uint64, merge MergeFunc[V]) *Array[V] {
	return NewArray(numUnits, seed, func() UnitCache[V] { return NewUnit3[V](merge) })
}

// Units returns the number of units.
func (a *Array[V]) Units() int { return len(a.units) }

// Capacity returns the total entry capacity (units × per-unit capacity).
func (a *Array[V]) Capacity() int {
	if len(a.units) == 0 {
		return 0
	}
	return len(a.units) * a.units[0].Cap()
}

// Len returns the total number of occupied entries across all units.
func (a *Array[V]) Len() int {
	total := 0
	for _, u := range a.units {
		total += u.Len()
	}
	return total
}

// UnitFor returns the unit addressed by h(k), exposing per-unit operations
// (used by the pipeline programs and by Series).
func (a *Array[V]) UnitFor(k uint64) UnitCache[V] {
	return a.units[a.hash.Index(k, len(a.units))]
}

// Lookup returns the value for k without modifying the array.
func (a *Array[V]) Lookup(k uint64) (V, bool) {
	return a.UnitFor(k).Lookup(k)
}

// Update inserts or refreshes k in its unit (Algorithm 1 on the unit).
func (a *Array[V]) Update(k uint64, v V) Result[V] {
	return a.UnitFor(k).Update(k, v)
}

// InsertTail stores k as the least recently used entry of its unit.
func (a *Array[V]) InsertTail(k uint64, v V) Result[V] {
	return a.UnitFor(k).InsertTail(k, v)
}

// Range calls fn for every cached (key, value) pair until fn returns false.
// Iteration order is unit order, then LRU order within a unit.
func (a *Array[V]) Range(fn func(k uint64, v V) bool) {
	for _, u := range a.units {
		for i := 0; i < u.Len(); i++ {
			k := u.KeyAt(i)
			v, _ := u.Lookup(k)
			if !fn(k, v) {
				return
			}
		}
	}
}
