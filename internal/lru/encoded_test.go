package lru

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/p4lru/p4lru/internal/perm"
)

// TestState3Table1 checks the Table 1 encoding: even permutations get even
// codes, odd permutations odd codes, and encode/decode round-trip.
func TestState3Table1(t *testing.T) {
	seen := map[State3]bool{}
	for _, p := range perm.All(3) {
		code := State3Encode(p)
		if seen[code] {
			t.Fatalf("code %d assigned twice", code)
		}
		seen[code] = true
		if int(code)&1 != p.Parity() {
			t.Errorf("perm %v parity %d but code %d", p, p.Parity(), code)
		}
		if !State3Decode(code).Equal(p) {
			t.Errorf("decode(encode(%v)) = %v", p, State3Decode(code))
		}
	}
	if got := State3Encode(perm.Identity(3)); got != State3Initial {
		t.Errorf("identity code = %d, want %d", got, State3Initial)
	}
}

func TestState3DecodePanicsOnBadCode(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("State3Decode(6) did not panic")
		}
	}()
	State3Decode(6)
}

// TestState3ArithmeticMatchesGroupTheory verifies that the §2.3.2 stateful-ALU
// arithmetic implements exactly S_new = R^-1 × S for each operation, over all
// six states.
func TestState3ArithmeticMatchesGroupTheory(t *testing.T) {
	ops := []struct {
		name  string
		arith func(State3) State3
		rot   int // 0-based hit position
	}{
		{"op1", State3Op1, 0},
		{"op2", State3Op2, 1},
		{"op3", State3Op3, 2},
	}
	for _, op := range ops {
		rinv := perm.RotationInverse(3, op.rot)
		for s := State3(0); s < 6; s++ {
			want := State3Encode(rinv.Compose(State3Decode(s)))
			if got := op.arith(s); got != want {
				t.Errorf("%s(%d) = %d, want %d", op.name, s, got, want)
			}
		}
	}
}

// TestState3Figure4 checks the specific transitions drawn in Figure 4
// (type-2 permutation, hit on key[2]).
func TestState3Figure4(t *testing.T) {
	for _, tr := range []struct{ from, to State3 }{
		{4, 5}, {5, 4}, {1, 2}, {2, 1}, {0, 3}, {3, 0},
	} {
		if got := State3Op2(tr.from); got != tr.to {
			t.Errorf("op2: %d → %d, want %d", tr.from, got, tr.to)
		}
	}
}

// TestState3Figure5 checks the transitions drawn in Figure 5 (type-3
// permutation, hit on key[3] or miss).
func TestState3Figure5(t *testing.T) {
	for _, tr := range []struct{ from, to State3 }{
		{4, 2}, {2, 0}, {0, 4}, {5, 3}, {3, 1}, {1, 5},
	} {
		if got := State3Op3(tr.from); got != tr.to {
			t.Errorf("op3: %d → %d, want %d", tr.from, got, tr.to)
		}
	}
}

// TestState3OpOrders: op3 generates the 3-cycle structure (order 3), op2 an
// involution (order 2) — the C3 and C2 parts of S3.
func TestState3OpOrders(t *testing.T) {
	for s := State3(0); s < 6; s++ {
		if State3Op2(State3Op2(s)) != s {
			t.Errorf("op2 not an involution at %d", s)
		}
		if got := State3Op3(State3Op3(State3Op3(s))); got != s {
			t.Errorf("op3^3(%d) = %d", s, got)
		}
	}
}

// differentialRun drives an encoded unit and the generic Unit with the same
// operation stream and asserts identical observable behaviour.
func differentialRun[V comparable](t *testing.T, name string, enc, ref UnitCache[V],
	genKey func(r *rand.Rand) uint64, genVal func(r *rand.Rand, step int) V, steps int, seed int64) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	for step := 0; step < steps; step++ {
		k := genKey(r)
		v := genVal(r, step)
		var re, rr Result[V]
		switch r.Intn(4) {
		case 0, 1: // Update is the common path
			re, rr = enc.Update(k, v), ref.Update(k, v)
		case 2:
			ve, oke := enc.Lookup(k)
			vr, okr := ref.Lookup(k)
			if oke != okr || ve != vr {
				t.Fatalf("%s step %d: Lookup(%d) = (%v,%v) vs (%v,%v)", name, step, k, ve, oke, vr, okr)
			}
			continue
		case 3:
			re, rr = enc.InsertTail(k, v), ref.InsertTail(k, v)
		}
		if re != rr {
			t.Fatalf("%s step %d key %d: %+v vs %+v", name, step, k, re, rr)
		}
		if enc.Len() != ref.Len() {
			t.Fatalf("%s step %d: len %d vs %d", name, step, enc.Len(), ref.Len())
		}
		if !equalKeys(keysOf[V](enc), keysOf[V](ref)) {
			t.Fatalf("%s step %d: keys %v vs %v", name, step, keysOf[V](enc), keysOf[V](ref))
		}
	}
}

func TestUnit2MatchesGeneric(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		differentialRun[uint64](t, "unit2",
			NewUnit2[uint64](nil), NewUnit[uint64](2, nil),
			func(r *rand.Rand) uint64 { return uint64(r.Intn(6)) },
			func(r *rand.Rand, step int) uint64 { return uint64(step) },
			10000, seed)
	}
}

func TestUnit3MatchesGeneric(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		differentialRun[uint64](t, "unit3",
			NewUnit3[uint64](nil), NewUnit[uint64](3, nil),
			func(r *rand.Rand) uint64 { return uint64(r.Intn(8)) },
			func(r *rand.Rand, step int) uint64 { return uint64(step) },
			10000, seed)
	}
}

func TestUnit4MatchesGeneric(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		differentialRun[uint64](t, "unit4",
			NewUnit4[uint64](nil), NewUnit[uint64](4, nil),
			func(r *rand.Rand) uint64 { return uint64(r.Intn(10)) },
			func(r *rand.Rand, step int) uint64 { return uint64(step) },
			10000, seed)
	}
}

func TestEncodedUnitsWithMerge(t *testing.T) {
	add := func(old, in uint64) uint64 { return old + in }
	for seed := int64(0); seed < 3; seed++ {
		differentialRun[uint64](t, "unit3+merge",
			NewUnit3[uint64](add), NewUnit[uint64](3, add),
			func(r *rand.Rand) uint64 { return uint64(r.Intn(8)) },
			func(r *rand.Rand, step int) uint64 { return uint64(r.Intn(100)) },
			10000, seed)
		differentialRun[uint64](t, "unit2+merge",
			NewUnit2[uint64](add), NewUnit[uint64](2, add),
			func(r *rand.Rand) uint64 { return uint64(r.Intn(6)) },
			func(r *rand.Rand, step int) uint64 { return uint64(r.Intn(100)) },
			10000, seed)
		differentialRun[uint64](t, "unit4+merge",
			NewUnit4[uint64](add), NewUnit[uint64](4, add),
			func(r *rand.Rand) uint64 { return uint64(r.Intn(10)) },
			func(r *rand.Rand, step int) uint64 { return uint64(r.Intn(100)) },
			10000, seed)
	}
}

// Property-based differential: arbitrary key streams from testing/quick.
func TestUnit3DifferentialProperty(t *testing.T) {
	f := func(stream []uint16) bool {
		enc := NewUnit3[uint64](nil)
		ref := NewUnit[uint64](3, nil)
		for i, raw := range stream {
			k := uint64(raw % 7)
			re := enc.Update(k, uint64(i))
			rr := ref.Update(k, uint64(i))
			if re != rr || !equalKeys(keysOf[uint64](enc), keysOf[uint64](ref)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestUnit3StateReachability: from the initial state, the two non-trivial
// operations generate all of S3 (the DFA is strongly connected).
func TestUnit3StateReachability(t *testing.T) {
	seen := map[State3]bool{State3Initial: true}
	frontier := []State3{State3Initial}
	for len(frontier) > 0 {
		s := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		for _, next := range []State3{State3Op2(s), State3Op3(s)} {
			if !seen[next] {
				seen[next] = true
				frontier = append(frontier, next)
			}
		}
	}
	if len(seen) != 6 {
		t.Errorf("reachable states = %d, want 6", len(seen))
	}
}

// TestUnit4PairEncodingConsistency: the reconstructed S4 state always equals
// the permutation an explicitly-tracked generic unit holds.
func TestUnit4PairEncodingConsistency(t *testing.T) {
	enc := NewUnit4[uint64](nil)
	ref := NewUnit[uint64](4, nil)
	r := rand.New(rand.NewSource(99))
	for step := 0; step < 5000; step++ {
		k := uint64(r.Intn(9))
		enc.Update(k, uint64(step))
		ref.Update(k, uint64(step))
		if !enc.State().Equal(ref.State()) {
			t.Fatalf("step %d: pair state %v vs reference %v", step, enc.State(), ref.State())
		}
	}
}

// TestUnit4V4CorrectionNontrivial: the V4 part of the pair encoding must
// actually be exercised (otherwise the encoding would be vacuous).
func TestUnit4V4CorrectionNontrivial(t *testing.T) {
	enc := NewUnit4[uint64](nil)
	r := rand.New(rand.NewSource(3))
	sawNonzero := false
	for step := 0; step < 2000 && !sawNonzero; step++ {
		enc.Update(uint64(r.Intn(9)), uint64(step))
		if _, v4 := enc.StatePair(); v4 != 0 {
			sawNonzero = true
		}
	}
	if !sawNonzero {
		t.Error("v4 component never left 0 — pair encoding is degenerate")
	}
}

func TestEncodedResets(t *testing.T) {
	u2, u3, u4 := NewUnit2[uint64](nil), NewUnit3[uint64](nil), NewUnit4[uint64](nil)
	for _, k := range []uint64{1, 2, 3, 4, 5} {
		u2.Update(k, k)
		u3.Update(k, k)
		u4.Update(k, k)
	}
	u2.Reset()
	u3.Reset()
	u4.Reset()
	if u2.Len() != 0 || u2.State() != 0 {
		t.Error("unit2 reset incomplete")
	}
	if u3.Len() != 0 || u3.State() != State3Initial {
		t.Error("unit3 reset incomplete")
	}
	s3, v4 := u4.StatePair()
	if u4.Len() != 0 || s3 != State3Initial || v4 != 0 {
		t.Error("unit4 reset incomplete")
	}
}

func BenchmarkUnit3Update(b *testing.B) {
	u := NewUnit3[uint64](nil)
	for i := 0; i < b.N; i++ {
		u.Update(uint64(i%8), uint64(i))
	}
}

func BenchmarkUnitGeneric3Update(b *testing.B) {
	u := NewUnit[uint64](3, nil)
	for i := 0; i < b.N; i++ {
		u.Update(uint64(i%8), uint64(i))
	}
}

func BenchmarkUnit4Update(b *testing.B) {
	u := NewUnit4[uint64](nil)
	for i := 0; i < b.N; i++ {
		u.Update(uint64(i%10), uint64(i))
	}
}
