package lru

import "fmt"

// Unit2 is the P4LRU2 cache unit of §2.3.1: two key registers, two value
// registers, and a one-bit state register. State 0 encodes the identity
// mapping (key[1]↔val[1], key[2]↔val[2]); state 1 the swap. A single
// stateful ALU covers both transition branches.
type Unit2[V any] struct {
	keys  [2]uint64
	vals  [2]V
	state State2
	size  uint8
	merge MergeFunc[V]
}

var _ UnitCache[int] = (*Unit2[int])(nil)

// State2Op1 is the transition for a hit on key[1]: no change.
func State2Op1(s State2) State2 { return s }

// State2Op2 is the transition for a hit on key[2] or a miss: S ^ 1.
func State2Op2(s State2) State2 { return s ^ 1 }

// NewUnit2 returns an empty P4LRU2 unit. merge may be nil for replace-on-hit
// semantics.
func NewUnit2[V any](merge MergeFunc[V]) *Unit2[V] {
	return &Unit2[V]{merge: merge}
}

// Len returns the number of occupied entries.
func (u *Unit2[V]) Len() int { return int(u.size) }

// Cap returns 2.
func (u *Unit2[V]) Cap() int { return 2 }

// State returns the current one-bit cache state.
func (u *Unit2[V]) State() State2 { return u.state }

// KeyAt returns the i-th key in LRU order (0 = most recently used).
func (u *Unit2[V]) KeyAt(i int) uint64 {
	if i < 0 || i >= int(u.size) {
		panic(fmt.Sprintf("lru: KeyAt(%d) with %d entries", i, u.size))
	}
	return u.keys[i]
}

// valPos returns the value slot of key position i: S(i), where S is the
// identity for state 0 and the swap for state 1.
func (u *Unit2[V]) valPos(i int) int {
	return i ^ int(u.state)
}

// Lookup returns the value mapped to k without modifying the unit.
func (u *Unit2[V]) Lookup(k uint64) (V, bool) {
	for i := 0; i < int(u.size); i++ {
		if u.keys[i] == k {
			return u.vals[u.valPos(i)], true
		}
	}
	var zero V
	return zero, false
}

// Update is Algorithm 1 specialized to n=2.
func (u *Unit2[V]) Update(k uint64, v V) Result[V] {
	var res Result[V]

	hitPos := -1
	for i := 0; i < int(u.size); i++ {
		if u.keys[i] == k {
			hitPos = i
			break
		}
	}

	var op int
	switch {
	case hitPos >= 0:
		res.Hit = true
		op = hitPos
	case u.size < 2:
		op = int(u.size)
		u.size++
	default:
		op = 1
		res.Evicted = true
		res.EvictedKey = u.keys[1]
	}

	if op == 1 {
		u.keys[1] = u.keys[0]
		u.state = State2Op2(u.state)
	}
	u.keys[0] = k

	slot := u.valPos(0)
	if res.Evicted {
		res.EvictedValue = u.vals[slot]
	}
	if res.Hit && u.merge != nil {
		u.vals[slot] = u.merge(u.vals[slot], v)
	} else {
		u.vals[slot] = v
	}
	return res
}

// InsertTail stores k as the least recently used entry without a state
// transition.
func (u *Unit2[V]) InsertTail(k uint64, v V) Result[V] {
	var res Result[V]
	for i := 0; i < int(u.size); i++ {
		if u.keys[i] == k {
			res.Hit = true
			u.vals[u.valPos(i)] = v
			return res
		}
	}
	if u.size < 2 {
		u.keys[u.size] = k
		u.vals[u.valPos(int(u.size))] = v
		u.size++
		return res
	}
	slot := u.valPos(1)
	res.Evicted = true
	res.EvictedKey = u.keys[1]
	res.EvictedValue = u.vals[slot]
	u.keys[1] = k
	u.vals[slot] = v
	return res
}

// Reset empties the unit and restores the initial state.
func (u *Unit2[V]) Reset() {
	u.size = 0
	u.state = 0
}
