package lru

import (
	"encoding/binary"
	"math/rand"
	"testing"
)

// flatOps is the subset of the flat-core surface the capacity-generic
// differential helpers drive.
type flatOps interface {
	Update(k, v uint64) Result[uint64]
	InsertTail(k, v uint64) Result[uint64]
	Lookup(k uint64) (uint64, bool)
	Len() int
	Units() int
	UnitCap() int
	UnitLen(u int) int
	UnitKeyAt(u, i int) uint64
}

var (
	_ flatOps = (*FlatArray2)(nil)
	_ flatOps = (*FlatArray3)(nil)
	_ flatOps = (*FlatArray4)(nil)
)

// checkFlatOpsEquivalence asserts a flat core and the generic oracle array
// agree on occupancy, per-unit LRU key order and the value mapping; the
// per-capacity state encodings are compared by the callers that know them.
func checkFlatOpsEquivalence(t *testing.T, flat flatOps, gen *Array[uint64]) {
	t.Helper()
	if flat.Len() != gen.Len() {
		t.Fatalf("len diverged: flat %d generic %d", flat.Len(), gen.Len())
	}
	for u := 0; u < flat.Units(); u++ {
		gu := gen.units[u]
		if flat.UnitLen(u) != gu.Len() {
			t.Fatalf("unit %d occupancy diverged: flat %d generic %d", u, flat.UnitLen(u), gu.Len())
		}
		for i := 0; i < gu.Len(); i++ {
			if fk, gk := flat.UnitKeyAt(u, i), gu.KeyAt(i); fk != gk {
				t.Fatalf("unit %d key[%d] diverged: flat %d generic %d", u, i, fk, gk)
			}
			k := gu.KeyAt(i)
			fv, fok := flat.Lookup(k)
			gv, gok := gen.Lookup(k)
			if fok != gok || fv != gv {
				t.Fatalf("lookup(%d) diverged: flat (%d,%v) generic (%d,%v)", k, fv, fok, gv, gok)
			}
		}
	}
}

// applyFlatOp drives one decoded op through a flat core and the generic
// array and fails on any divergence in the returned Result.
func applyFlatOp(t *testing.T, flat flatOps, gen *Array[uint64], kind uint8, k, v uint64) {
	t.Helper()
	var fr, gr Result[uint64]
	switch kind % 3 {
	case 0, 1: // Update is twice as likely — it is the hot path.
		fr = flat.Update(k, v)
		gr = gen.Update(k, v)
	case 2:
		fr = flat.InsertTail(k, v)
		gr = gen.InsertTail(k, v)
	}
	if fr != gr {
		t.Fatalf("op %d on key %d diverged: flat %+v generic %+v", kind%3, k, fr, gr)
	}
}

// newGenericArray builds the generic oracle array for a unit capacity.
func newGenericArray(unitCap, units int, seed uint64, merge MergeFunc[uint64]) *Array[uint64] {
	switch unitCap {
	case 2:
		return NewArray(units, seed, func() UnitCache[uint64] { return NewUnit2[uint64](merge) })
	case 4:
		return NewArray(units, seed, func() UnitCache[uint64] { return NewUnit4[uint64](merge) })
	default:
		return NewArray3[uint64](units, seed, merge)
	}
}

// TestFlat2VsGenericDifferential replays long random op streams through
// FlatArray2 and the generic Array+Unit2 oracle with the same seed — the
// FlatArray3 differential suite for the 2-wide core, including the one-bit
// state encoding.
func TestFlat2VsGenericDifferential(t *testing.T) {
	add := func(old, in uint64) uint64 { return old + in }
	for _, tc := range []struct {
		name  string
		merge MergeFunc[uint64]
	}{
		{"replace", nil},
		{"merge-add", add},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 5; seed++ {
				const units = 64
				flat := NewFlatArray2(units, uint64(seed), tc.merge)
				gen := newGenericArray(2, units, uint64(seed), tc.merge)
				r := rand.New(rand.NewSource(seed))
				keySpace := uint64(units * 4)
				for step := 0; step < 50000; step++ {
					k := uint64(r.Int63n(int64(keySpace))) + 1
					applyFlatOp(t, flat, gen, uint8(r.Intn(3)), k, uint64(step+1))
					if step%500 == 0 {
						checkFlatOpsEquivalence(t, flat, gen)
						for u := 0; u < units; u++ {
							if got, want := flat.UnitState(u), gen.units[u].(*Unit2[uint64]).State(); got != want {
								t.Fatalf("unit %d state diverged: flat %d generic %d", u, got, want)
							}
						}
					}
				}
				checkFlatOpsEquivalence(t, flat, gen)
			}
		})
	}
}

// TestFlat4VsGenericDifferential is the same differential suite for
// FlatArray4 against Array+Unit4, including the (s3, v4) pair encoding.
func TestFlat4VsGenericDifferential(t *testing.T) {
	add := func(old, in uint64) uint64 { return old + in }
	for _, tc := range []struct {
		name  string
		merge MergeFunc[uint64]
	}{
		{"replace", nil},
		{"merge-add", add},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 5; seed++ {
				const units = 64
				flat := NewFlatArray4(units, uint64(seed), tc.merge)
				gen := newGenericArray(4, units, uint64(seed), tc.merge)
				r := rand.New(rand.NewSource(seed))
				keySpace := uint64(units * 6)
				for step := 0; step < 50000; step++ {
					k := uint64(r.Int63n(int64(keySpace))) + 1
					applyFlatOp(t, flat, gen, uint8(r.Intn(3)), k, uint64(step+1))
					if step%500 == 0 {
						checkFlatOpsEquivalence(t, flat, gen)
						for u := 0; u < units; u++ {
							gu := gen.units[u].(*Unit4[uint64])
							gs3, gv4 := gu.StatePair()
							fs3, fv4 := flat.UnitStatePair(u)
							if fs3 != gs3 || fv4 != gv4 {
								t.Fatalf("unit %d pair diverged: flat (%d,%d) generic (%d,%d)", u, fs3, fv4, gs3, gv4)
							}
						}
					}
				}
				checkFlatOpsEquivalence(t, flat, gen)
			}
		})
	}
}

// FuzzFlat2VsGeneric and FuzzFlat4VsGeneric decode fuzz input as op streams
// and differentially execute them — the FlatArray3 fuzz harness for the new
// cores.
func FuzzFlat2VsGeneric(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	f.Add([]byte{2, 0, 0, 0, 2, 0, 0, 1, 2, 0, 0, 2, 2, 0, 0, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzFlatVsGeneric(t, data, NewFlatArray2(8, 7, nil), newGenericArray(2, 8, 7, nil))
	})
}

func FuzzFlat4VsGeneric(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	f.Add([]byte{2, 0, 0, 0, 2, 0, 0, 1, 2, 0, 0, 2, 2, 0, 0, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzFlatVsGeneric(t, data, NewFlatArray4(8, 7, nil), newGenericArray(4, 8, 7, nil))
	})
}

func fuzzFlatVsGeneric(t *testing.T, data []byte, flat flatOps, gen *Array[uint64]) {
	for len(data) >= 3 {
		kind := data[0]
		k := uint64(data[1]%32) + 1 // small key space forces collisions
		v := uint64(data[2])
		data = data[3:]
		if len(data) >= 8 { // occasionally take a full-width key
			if kind&0x80 != 0 {
				k = binary.LittleEndian.Uint64(data)%64 + 1
				data = data[8:]
			}
		}
		applyFlatOp(t, flat, gen, kind, k, v)
	}
	checkFlatOpsEquivalence(t, flat, gen)
}

// TestFlat24BatchMatchesScalar pins the batch walks of the 2- and 4-wide
// cores to their scalar paths, like TestFlatBatchMatchesScalar does for 3.
func TestFlat24BatchMatchesScalar(t *testing.T) {
	for _, unitCap := range []int{2, 4} {
		const units = 128
		batched := NewFlatCore(unitCap, units, 3, nil)
		scalar := NewFlatCore(unitCap, units, 3, nil)
		r := rand.New(rand.NewSource(9))

		for round := 0; round < 50; round++ {
			n := r.Intn(200) + 1
			keys := make([]uint64, n)
			vals := make([]uint64, n)
			for i := range keys {
				keys[i] = uint64(r.Int63n(units*4)) + 1
				vals[i] = uint64(r.Int63())
			}

			wantHits, wantEv := 0, 0
			for i := range keys {
				res := scalar.Update(keys[i], vals[i])
				if res.Hit {
					wantHits++
				}
				if res.Evicted {
					wantEv++
				}
			}
			hits, ev := batched.UpdateBatch(keys, vals)
			if hits != wantHits || ev != wantEv {
				t.Fatalf("cap %d round %d: UpdateBatch (%d hits, %d ev) != scalar (%d hits, %d ev)",
					unitCap, round, hits, ev, wantHits, wantEv)
			}

			gotV := make([]uint64, n)
			gotOK := make([]bool, n)
			batched.QueryBatch(keys, gotV, gotOK)
			for i, k := range keys {
				wv, wok := scalar.Lookup(k)
				if gotV[i] != wv || gotOK[i] != wok {
					t.Fatalf("cap %d round %d: QueryBatch[%d] key %d = (%d,%v), want (%d,%v)",
						unitCap, round, i, k, gotV[i], gotOK[i], wv, wok)
				}
			}
		}
	}
}

// TestFlat24ZeroAlloc pins the zero-allocation contract of the new cores'
// hot paths, mirroring TestFlatZeroAlloc.
func TestFlat24ZeroAlloc(t *testing.T) {
	for _, unitCap := range []int{2, 4} {
		a := NewFlatCore(unitCap, 1<<10, 1, nil)
		keys := make([]uint64, 256)
		vals := make([]uint64, 256)
		oks := make([]bool, 256)
		r := rand.New(rand.NewSource(2))
		for i := range keys {
			keys[i] = uint64(r.Int63n(1 << 12))
		}

		var k uint64
		if n := testing.AllocsPerRun(1000, func() {
			k++
			a.Update(k&0xfff, k)
		}); n != 0 {
			t.Errorf("cap %d: Update allocates %v/op, want 0", unitCap, n)
		}
		if n := testing.AllocsPerRun(1000, func() {
			k++
			a.Lookup(k & 0xfff)
		}); n != 0 {
			t.Errorf("cap %d: Lookup allocates %v/op, want 0", unitCap, n)
		}
		if n := testing.AllocsPerRun(1000, func() {
			k++
			a.InsertTail(k&0xfff, k)
		}); n != 0 {
			t.Errorf("cap %d: InsertTail allocates %v/op, want 0", unitCap, n)
		}

		a.UpdateBatch(keys, vals) // grow the batch scratch once
		if n := testing.AllocsPerRun(100, func() {
			a.UpdateBatch(keys, vals)
		}); n != 0 {
			t.Errorf("cap %d: UpdateBatch allocates %v/batch, want 0", unitCap, n)
		}
		if n := testing.AllocsPerRun(100, func() {
			a.QueryBatch(keys, vals, oks)
		}); n != 0 {
			t.Errorf("cap %d: QueryBatch allocates %v/batch, want 0", unitCap, n)
		}
	}
}
