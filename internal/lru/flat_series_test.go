package lru

import (
	"math/rand"
	"testing"
)

// collectRange drains a Range iterator into (key, value) order.
type kvPair struct{ k, v uint64 }

func collectRange(rangeFn func(func(k, v uint64) bool)) []kvPair {
	var out []kvPair
	rangeFn(func(k, v uint64) bool {
		out = append(out, kvPair{k, v})
		return true
	})
	return out
}

// checkSeriesEquivalence compares a FlatSeries and a generic Series level
// by level: occupancy and the full Range sequence (unit order then LRU
// order, so sequence equality pins key order, value placement and state).
func checkSeriesEquivalence(t *testing.T, flat *FlatSeries, gen *Series[uint64]) {
	t.Helper()
	if flat.Len() != gen.Len() {
		t.Fatalf("len diverged: flat %d generic %d", flat.Len(), gen.Len())
	}
	for i := 0; i < gen.Levels(); i++ {
		fl, gl := flat.Level(i), gen.Level(i)
		if fl.Len() != gl.Len() {
			t.Fatalf("level %d occupancy diverged: flat %d generic %d", i, fl.Len(), gl.Len())
		}
		fp := collectRange(fl.Range)
		gp := collectRange(gl.Range)
		if len(fp) != len(gp) {
			t.Fatalf("level %d range length diverged: flat %d generic %d", i, len(fp), len(gp))
		}
		for j := range fp {
			if fp[j] != gp[j] {
				t.Fatalf("level %d range[%d] diverged: flat %+v generic %+v", i, j, fp[j], gp[j])
			}
		}
	}
}

// TestFlatSeriesVsGenericDifferential replays random query/reply streams
// through FlatSeries and the generic Series with the same parameters, for
// every flat unit capacity, and requires identical query answers, reply
// results and per-level contents throughout — the §3.2 series connection on
// flat cores is bit-identical to the oracle.
func TestFlatSeriesVsGenericDifferential(t *testing.T) {
	for _, unitCap := range []int{2, 3, 4} {
		for seed := int64(1); seed <= 3; seed++ {
			const levels, units = 4, 16
			flat := NewFlatSeries(unitCap, levels, units, uint64(seed), nil)
			gen := NewSeriesUnitCapOracle(unitCap, levels, units, uint64(seed), nil)
			r := rand.New(rand.NewSource(seed))
			keySpace := int64(units * unitCap * levels)
			for step := 0; step < 30000; step++ {
				k := uint64(r.Int63n(keySpace)) + 1
				v := uint64(step + 1)
				switch r.Intn(4) {
				case 0: // blind reply (the engine's NoToken update path)
					fr := flat.Reply(k, v, 0)
					gr := gen.Reply(k, v, 0)
					if fr != gr {
						t.Fatalf("cap %d blind reply(%d) diverged: flat %+v generic %+v", unitCap, k, fr, gr)
					}
				default: // query/reply round trip, the paper's two-pass access
					fv, flevel, fok := flat.Query(k)
					gv, glevel, gok := gen.Query(k)
					if fv != gv || flevel != glevel || fok != gok {
						t.Fatalf("cap %d query(%d) diverged: flat (%d,%d,%v) generic (%d,%d,%v)",
							unitCap, k, fv, flevel, fok, gv, glevel, gok)
					}
					fr := flat.Reply(k, v, flevel)
					gr := gen.Reply(k, v, glevel)
					if fr != gr {
						t.Fatalf("cap %d reply(%d,level=%d) diverged: flat %+v generic %+v", unitCap, k, flevel, fr, gr)
					}
				}
				if step%500 == 0 {
					checkSeriesEquivalence(t, flat, gen)
					if fc, gc := flat.Contains(k), gen.Contains(k); fc != gc {
						t.Fatalf("cap %d contains(%d) diverged: flat %d generic %d", unitCap, k, fc, gc)
					}
				}
			}
			checkSeriesEquivalence(t, flat, gen)
		}
	}
}

// NewSeriesUnitCapOracle builds the generic series oracle for a flat unit
// capacity — NewSeries with the matching generic unit constructor.
func NewSeriesUnitCapOracle(unitCap, levels, units int, seed uint64, merge MergeFunc[uint64]) *Series[uint64] {
	switch unitCap {
	case 2:
		return NewSeries(levels, units, seed, func() UnitCache[uint64] { return NewUnit2[uint64](merge) })
	case 4:
		return NewSeries(levels, units, seed, func() UnitCache[uint64] { return NewUnit4[uint64](merge) })
	default:
		return NewSeries3[uint64](levels, units, seed, merge)
	}
}

// FuzzFlatSeriesVsGeneric decodes fuzz input as a query/reply stream and
// differentially executes it against both series.
func FuzzFlatSeriesVsGeneric(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	f.Add([]byte{2, 0, 0, 2, 0, 1, 2, 0, 2, 2, 0, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		const levels, units = 3, 4
		flat := NewFlatSeries(3, levels, units, 7, nil)
		gen := NewSeries3[uint64](levels, units, 7, nil)
		for len(data) >= 3 {
			kind := data[0]
			k := uint64(data[1]%24) + 1
			v := uint64(data[2])
			data = data[3:]
			if kind%4 == 0 {
				fr := flat.Reply(k, v, 0)
				gr := gen.Reply(k, v, 0)
				if fr != gr {
					t.Fatalf("blind reply(%d) diverged: flat %+v generic %+v", k, fr, gr)
				}
				continue
			}
			fv, flevel, fok := flat.Query(k)
			gv, glevel, gok := gen.Query(k)
			if fv != gv || flevel != glevel || fok != gok {
				t.Fatalf("query(%d) diverged: flat (%d,%d,%v) generic (%d,%d,%v)",
					k, fv, flevel, fok, gv, glevel, gok)
			}
			fr := flat.Reply(k, v, flevel)
			gr := gen.Reply(k, v, glevel)
			if fr != gr {
				t.Fatalf("reply(%d,level=%d) diverged: flat %+v generic %+v", k, flevel, fr, gr)
			}
		}
		checkSeriesEquivalence(t, flat, gen)
	})
}

// TestFlatSeriesZeroAlloc pins the zero-allocation contract of the series
// query path (and the reply path, which composes flat writer ops).
func TestFlatSeriesZeroAlloc(t *testing.T) {
	s := NewFlatSeries(3, 4, 1<<8, 1, nil)
	var k uint64
	for i := 0; i < 4096; i++ {
		k++
		s.Reply(k&0xfff, k, 0)
	}
	if n := testing.AllocsPerRun(1000, func() {
		k++
		s.Query(k & 0xfff)
	}); n != 0 {
		t.Errorf("Query allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		k++
		_, level, _ := s.Query(k & 0xfff)
		s.Reply(k&0xfff, k, level)
	}); n != 0 {
		t.Errorf("Query+Reply allocates %v/op, want 0", n)
	}
}
