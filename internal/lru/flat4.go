package lru

import (
	"fmt"
	"runtime"

	"github.com/p4lru/p4lru/internal/hashing"
)

// FlatArray4 is the parallel-connection array of P4LRU4 units (§2.3.3) in
// the struct-of-arrays, seqlock-versioned layout of FlatArray3:
//
//	keys : []uint64, 4 per unit — the key registers of stages 1–4
//	vals : []uint64, 4 per unit — the value registers of stages 1–4
//	meta : []uint32, 1 per unit — the seqlock word: version<<8 | packed
//	       state byte (bits 0–2 the s3 quotient code, bits 3–4 the V4
//	       correction, bits 5–7 the occupancy)
//
// The 24-element S4 cache state is stored pair-encoded exactly as Unit4
// stores it — the (s3, v4) factorization through S4/V4 ≅ S3 — but both the
// pair transition and the occupancy bump are fused into one 256-entry table
// load per update (flat4NextMeta), and the key-position → value-slot
// permutation is a direct 32×4 table (flat4ValPos) indexed by the packed
// pair bits. FlatArray4 is behaviourally identical to NewArray with Unit4
// units and the same seed (the differential tests pin it); concurrency
// follows the FlatArray3 contract: one writer, wait-free concurrent
// readers.
type FlatArray4 struct {
	keys  []uint64 // len 4·units, keys[4u..4u+3] in LRU order (0 = MRU)
	vals  []uint64 // len 4·units, slots permuted by the unit pair state
	meta  []uint32 // len units, seqlock word (version<<8 | state byte)
	hash  hashing.Hash
	merge MergeFunc[uint64]

	// batchUnits is the writer's batch-walk scratch (see FlatArray3).
	batchUnits []int32
}

const (
	flat4S3Mask    = 0x07 // bits 0–2: s3 quotient code (0–5)
	flat4V4Shift   = 3    // bits 3–4: V4 correction index (0–3)
	flat4PermMask  = 0x1f // bits 0–4: the full pair encoding
	flat4SizeShift = 5    // bits 5–7: occupancy (0–4)
)

// flat4ValPos[pair][i] is the value slot of key position i under the packed
// (s3 | v4<<3) pair — unit4Tables.valPos flattened onto the meta-byte
// encoding so the hot path indexes it with meta&flat4PermMask directly.
var flat4ValPos = func() (t [32][4]uint8) {
	for c := 0; c < 6; c++ {
		for h := 0; h < 4; h++ {
			t[c|h<<flat4V4Shift] = unit4Tables.valPos[c][h]
		}
	}
	return
}()

// flat4NextMeta[op] maps a packed state byte to its successor under
// operation op (a hit at position op, or the insert/evict rotation ending
// at op): the s3 quotient transition, the V4 XOR correction and the
// occupancy increment of §2.3.3 folded into one table load. Only the 120
// valid byte values (s3 ≤ 5, size ≤ 4) are populated.
var flat4NextMeta = func() (t [4][256]uint8) {
	for c := 0; c < 6; c++ {
		for h := 0; h < 4; h++ {
			for size := 0; size <= 4; size++ {
				m := c | h<<flat4V4Shift | size<<flat4SizeShift
				for op := 0; op < 4; op++ {
					newSize := size
					if size < 4 && op == size {
						newSize = size + 1
					}
					c2 := int(unit4Tables.s3Next[op][c])
					h2 := h ^ int(unit4Tables.v4Xor[op][c])
					t[op][m] = uint8(c2 | h2<<flat4V4Shift | newSize<<flat4SizeShift)
				}
			}
		}
	}
	return
}()

// NewFlatArray4 builds a flat array of numUnits empty P4LRU4 units. seed
// selects the index-hash family member exactly as the generic constructors
// do; merge may be nil for replace-on-hit semantics.
func NewFlatArray4(numUnits int, seed uint64, merge MergeFunc[uint64]) *FlatArray4 {
	if numUnits < 1 {
		panic(fmt.Sprintf("lru: flat array with %d units", numUnits))
	}
	a := &FlatArray4{
		keys:  make([]uint64, 4*numUnits),
		vals:  make([]uint64, 4*numUnits),
		meta:  make([]uint32, numUnits),
		hash:  hashing.New(seed),
		merge: merge,
	}
	for u := range a.meta {
		a.meta[u] = uint32(State3Initial) // s3 = Table 1 initial, v4 = 0
	}
	return a
}

// Units returns the number of units.
func (a *FlatArray4) Units() int { return len(a.meta) }

// UnitCap returns 4.
func (a *FlatArray4) UnitCap() int { return 4 }

// Capacity returns the total entry capacity (4 per unit).
func (a *FlatArray4) Capacity() int { return 4 * len(a.meta) }

// Len returns the total number of occupied entries across all units.
func (a *FlatArray4) Len() int {
	total := 0
	for u := range a.meta {
		total += int(seqLoad32(&a.meta[u])&flatMetaMask) >> flat4SizeShift
	}
	return total
}

// UnitIndex returns the unit addressed by h(k).
func (a *FlatArray4) UnitIndex(k uint64) int {
	return a.hash.Index(k, len(a.meta))
}

// UnitLen returns the occupancy of unit u.
func (a *FlatArray4) UnitLen(u int) int {
	return int(seqLoad32(&a.meta[u])&flatMetaMask) >> flat4SizeShift
}

// UnitStatePair returns the raw (s3 code, v4 code) pair of unit u,
// mirroring Unit4.StatePair.
func (a *FlatArray4) UnitStatePair(u int) (State3, uint8) {
	w := seqLoad32(&a.meta[u])
	return State3(w & flat4S3Mask), uint8(w >> flat4V4Shift & 0x03)
}

// UnitKeyAt returns the i-th key of unit u in LRU order (0 = most recently
// used); writer-quiescent use only, like FlatArray3.UnitKeyAt.
func (a *FlatArray4) UnitKeyAt(u, i int) uint64 {
	if i < 0 || i >= a.UnitLen(u) {
		panic(fmt.Sprintf("lru: UnitKeyAt(%d) with %d entries", i, a.UnitLen(u)))
	}
	return seqLoad64(&a.keys[4*u+i])
}

// Lookup returns the value for k without modifying the array. Safe
// concurrent with the writer.
func (a *FlatArray4) Lookup(k uint64) (uint64, bool) {
	return a.lookupInUnit(a.UnitIndex(k), k)
}

func (a *FlatArray4) lookupInUnit(u int, k uint64) (uint64, bool) {
	base := 4 * u
	kk := a.keys[base : base+4 : base+4]
	vv := a.vals[base : base+4 : base+4]
	for spin := 0; ; spin++ {
		w := seqLoad32(&a.meta[u])
		if w&flatSeqOdd == 0 {
			size := int(w&flatMetaMask) >> flat4SizeShift
			pos := &flat4ValPos[w&flat4PermMask]
			var v uint64
			found := false
			for i := 0; i < size; i++ {
				if seqLoad64(&kk[i]) == k {
					v = seqLoad64(&vv[pos[i]])
					found = true
					break
				}
			}
			if seqLoad32(&a.meta[u]) == w {
				return v, found
			}
		}
		if spin&seqSpinMask == seqSpinMask {
			runtime.Gosched()
		}
	}
}

// Update inserts or refreshes k in its unit: Algorithm 1 specialized to
// n=4 with pair-encoded transitions, the slab form of Unit4.Update with
// seqlock-bracketed rewrites.
func (a *FlatArray4) Update(k, v uint64) Result[uint64] {
	return a.updateInUnit(a.UnitIndex(k), k, v)
}

func (a *FlatArray4) updateInUnit(u int, k, v uint64) Result[uint64] {
	var res Result[uint64]
	base := 4 * u
	kk := a.keys[base : base+4 : base+4]
	w := a.meta[u]
	m := uint8(w)
	size := m >> flat4SizeShift

	var op uint8
	switch {
	case size > 0 && kk[0] == k:
		res.Hit = true
		op = 0
	case size > 1 && kk[1] == k:
		res.Hit = true
		op = 1
	case size > 2 && kk[2] == k:
		res.Hit = true
		op = 2
	case size > 3 && kk[3] == k:
		res.Hit = true
		op = 3
	case size < 4:
		op = size
	default:
		op = 3
		res.Evicted = true
		res.EvictedKey = kk[3]
	}

	nm := flat4NextMeta[op][m]
	slot := base + int(flat4ValPos[nm&flat4PermMask][0])
	if res.Evicted {
		res.EvictedValue = a.vals[slot]
	}
	nv := v
	if res.Hit && a.merge != nil {
		nv = a.merge(a.vals[slot], v)
	}

	seqBegin(&a.meta[u])
	for i := op; i > 0; i-- {
		seqStore64(&kk[i], kk[i-1])
	}
	seqStore64(&kk[0], k)
	seqStore64(&a.vals[slot], nv)
	seqPublish(&a.meta[u], (w+flatSeqStep)&^uint32(flatMetaMask)|uint32(nm))
	return res
}

// InsertTail stores k as the least recently used entry of its unit without
// a state transition (§3.2 demotion) — the slab form of Unit4.InsertTail.
func (a *FlatArray4) InsertTail(k, v uint64) Result[uint64] {
	u := a.UnitIndex(k)
	var res Result[uint64]
	base := 4 * u
	w := a.meta[u]
	m := uint8(w)
	pos := &flat4ValPos[m&flat4PermMask]
	size := m >> flat4SizeShift

	for i := 0; i < int(size); i++ {
		if a.keys[base+i] == k {
			res.Hit = true
			seqBegin(&a.meta[u])
			seqStore64(&a.vals[base+int(pos[i])], v)
			seqPublish(&a.meta[u], w+flatSeqStep)
			return res
		}
	}
	if size < 4 {
		seqBegin(&a.meta[u])
		seqStore64(&a.keys[base+int(size)], k)
		seqStore64(&a.vals[base+int(pos[size])], v)
		seqPublish(&a.meta[u], w+flatSeqStep+1<<flat4SizeShift)
		return res
	}
	slot := base + int(pos[3])
	res.Evicted = true
	res.EvictedKey = a.keys[base+3]
	res.EvictedValue = a.vals[slot]
	seqBegin(&a.meta[u])
	seqStore64(&a.keys[base+3], k)
	seqStore64(&a.vals[slot], v)
	seqPublish(&a.meta[u], w+flatSeqStep)
	return res
}

// units ensures the writer's batch scratch covers n ops and returns it.
func (a *FlatArray4) units(n int) []int32 {
	if cap(a.batchUnits) < n {
		a.batchUnits = make([]int32, n)
	}
	return a.batchUnits[:n]
}

// QueryBatch looks up every keys[i] — the FlatArray3.QueryBatch walk over
// 4-wide units. Safe concurrent with the writer and with other readers.
func (a *FlatArray4) QueryBatch(keys []uint64, vals []uint64, oks []bool) {
	var units [flatQueryChunk]int32
	var touched uint64
	for start := 0; start < len(keys); start += flatQueryChunk {
		part := keys[start:min(start+flatQueryChunk, len(keys))]
		for i, k := range part {
			units[i] = int32(a.UnitIndex(k))
		}
		for i, k := range part {
			if j := i + batchLookahead; j < len(part) {
				touched += seqLoad64(&a.keys[4*units[j]])
			}
			vals[start+i], oks[start+i] = a.lookupInUnit(int(units[i]), k)
		}
	}
	sinkUint64(touched)
}

// UpdateBatch applies Update(keys[i], vals[i]) for every i in order and
// reports the hit and eviction totals — the FlatArray3.UpdateBatch walk.
func (a *FlatArray4) UpdateBatch(keys, vals []uint64) (hits, evictions int) {
	units := a.units(len(keys))
	for i, k := range keys {
		units[i] = int32(a.UnitIndex(k))
	}
	var touched uint64
	for i, k := range keys {
		if j := i + batchLookahead; j < len(units) {
			touched += seqLoad64(&a.keys[4*units[j]])
		}
		res := a.updateInUnit(int(units[i]), k, vals[i])
		if res.Hit {
			hits++
		}
		if res.Evicted {
			evictions++
		}
	}
	sinkUint64(touched)
	return hits, evictions
}

// Range calls fn for every cached (key, value) pair until fn returns false,
// in unit order then LRU order; per-unit seqlock snapshots like
// FlatArray3.Range.
func (a *FlatArray4) Range(fn func(k, v uint64) bool) {
	var ks, vs [4]uint64
	for u := range a.meta {
		base := 4 * u
		size := 0
		for spin := 0; ; spin++ {
			w := seqLoad32(&a.meta[u])
			if w&flatSeqOdd == 0 {
				size = int(w&flatMetaMask) >> flat4SizeShift
				pos := &flat4ValPos[w&flat4PermMask]
				for i := 0; i < size; i++ {
					ks[i] = seqLoad64(&a.keys[base+i])
					vs[i] = seqLoad64(&a.vals[base+int(pos[i])])
				}
				if seqLoad32(&a.meta[u]) == w {
					break
				}
			}
			if spin&seqSpinMask == seqSpinMask {
				runtime.Gosched()
			}
		}
		for i := 0; i < size; i++ {
			if !fn(ks[i], vs[i]) {
				return
			}
		}
	}
}

// Reset empties every unit and restores the initial cache state, under the
// per-unit seqlock brackets.
func (a *FlatArray4) Reset() {
	for u := range a.meta {
		base := 4 * u
		w := a.meta[u]
		seqBegin(&a.meta[u])
		for i := 0; i < 4; i++ {
			seqStore64(&a.keys[base+i], 0)
			seqStore64(&a.vals[base+i], 0)
		}
		seqPublish(&a.meta[u], (w+flatSeqStep)&^uint32(flatMetaMask)|uint32(State3Initial))
	}
}
