package lru

import (
	"encoding/binary"
	"math/rand"
	"testing"
)

// checkFlatEquivalence asserts that a FlatArray3 and the generic oracle
// array agree on every observable: total occupancy, per-unit occupancy,
// per-unit LRU key order, per-unit encoded state, and the value mapping.
func checkFlatEquivalence(t *testing.T, flat *FlatArray3, gen *Array[uint64]) {
	t.Helper()
	if flat.Len() != gen.Len() {
		t.Fatalf("len diverged: flat %d generic %d", flat.Len(), gen.Len())
	}
	for u := 0; u < flat.Units(); u++ {
		gu := gen.units[u].(*Unit3[uint64])
		if flat.UnitLen(u) != gu.Len() {
			t.Fatalf("unit %d occupancy diverged: flat %d generic %d", u, flat.UnitLen(u), gu.Len())
		}
		if flat.UnitState(u) != gu.State() {
			t.Fatalf("unit %d state diverged: flat %d generic %d", u, flat.UnitState(u), gu.State())
		}
		for i := 0; i < gu.Len(); i++ {
			if fk, gk := flat.UnitKeyAt(u, i), gu.KeyAt(i); fk != gk {
				t.Fatalf("unit %d key[%d] diverged: flat %d generic %d", u, i, fk, gk)
			}
			k := gu.KeyAt(i)
			fv, fok := flat.Lookup(k)
			gv, gok := gen.Lookup(k)
			if fok != gok || fv != gv {
				t.Fatalf("lookup(%d) diverged: flat (%d,%v) generic (%d,%v)", k, fv, fok, gv, gok)
			}
		}
	}
}

// applyDifferentialOp drives one decoded op through both arrays and fails on
// any divergence in the returned Result.
func applyDifferentialOp(t *testing.T, flat *FlatArray3, gen *Array[uint64], kind uint8, k, v uint64) {
	t.Helper()
	var fr, gr Result[uint64]
	switch kind % 3 {
	case 0, 1: // Update is twice as likely — it is the hot path.
		fr = flat.Update(k, v)
		gr = gen.Update(k, v)
	case 2:
		fr = flat.InsertTail(k, v)
		gr = gen.InsertTail(k, v)
	}
	if fr != gr {
		t.Fatalf("op %d on key %d diverged: flat %+v generic %+v", kind%3, k, fr, gr)
	}
}

// TestFlatVsGenericDifferential replays long random op streams (Update,
// InsertTail, Lookup) through FlatArray3 and the generic Array+Unit3 oracle
// with the same seed, with and without a merge function, and requires
// identical hit/evict results and identical unit states throughout — the
// property that lets every figure in results/ run on the flat core
// unchanged.
func TestFlatVsGenericDifferential(t *testing.T) {
	add := func(old, in uint64) uint64 { return old + in }
	for _, tc := range []struct {
		name  string
		merge MergeFunc[uint64]
	}{
		{"replace", nil},
		{"merge-add", add},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 5; seed++ {
				const units = 64
				flat := NewFlatArray3(units, uint64(seed), tc.merge)
				gen := NewArray3[uint64](units, uint64(seed), tc.merge)
				r := rand.New(rand.NewSource(seed))
				// Few distinct keys relative to capacity so hits, merges
				// and full-unit evictions all occur often.
				keySpace := uint64(units * 5)
				for step := 0; step < 50000; step++ {
					k := uint64(r.Int63n(int64(keySpace))) + 1
					v := uint64(step + 1)
					applyDifferentialOp(t, flat, gen, uint8(r.Intn(3)), k, v)
					if step%500 == 0 {
						checkFlatEquivalence(t, flat, gen)
					}
				}
				checkFlatEquivalence(t, flat, gen)
			}
		})
	}
}

// FuzzFlatVsGeneric decodes the fuzz input as a stream of (op, key, value)
// records and differentially executes it against both arrays. The fuzzer
// explores op interleavings the random streams may miss.
func FuzzFlatVsGeneric(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	f.Add([]byte{2, 0, 0, 0, 2, 0, 0, 1, 2, 0, 0, 2, 2, 0, 0, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		const units = 8
		flat := NewFlatArray3(units, 7, nil)
		gen := NewArray3[uint64](units, 7, nil)
		for len(data) >= 3 {
			kind := data[0]
			k := uint64(data[1]%32) + 1 // small key space forces collisions
			v := uint64(data[2])
			data = data[3:]
			if len(data) >= 8 { // occasionally take a full-width key
				if kind&0x80 != 0 {
					k = binary.LittleEndian.Uint64(data)%64 + 1
					data = data[8:]
				}
			}
			applyDifferentialOp(t, flat, gen, kind, k, v)
		}
		checkFlatEquivalence(t, flat, gen)
	})
}

// TestFlatBatchMatchesScalar pins QueryBatch/UpdateBatch to the scalar
// paths: a batch walk must be exactly equivalent to the loop of single-key
// calls it replaces.
func TestFlatBatchMatchesScalar(t *testing.T) {
	const units = 128
	batched := NewFlatArray3(units, 3, nil)
	scalar := NewFlatArray3(units, 3, nil)
	r := rand.New(rand.NewSource(9))

	for round := 0; round < 50; round++ {
		n := r.Intn(200) + 1
		keys := make([]uint64, n)
		vals := make([]uint64, n)
		for i := range keys {
			keys[i] = uint64(r.Int63n(units*4)) + 1
			vals[i] = uint64(r.Int63())
		}

		wantHits, wantEv := 0, 0
		for i := range keys {
			res := scalar.Update(keys[i], vals[i])
			if res.Hit {
				wantHits++
			}
			if res.Evicted {
				wantEv++
			}
		}
		hits, ev := batched.UpdateBatch(keys, vals)
		if hits != wantHits || ev != wantEv {
			t.Fatalf("round %d: UpdateBatch (%d hits, %d ev) != scalar (%d hits, %d ev)",
				round, hits, ev, wantHits, wantEv)
		}

		gotV := make([]uint64, n)
		gotOK := make([]bool, n)
		batched.QueryBatch(keys, gotV, gotOK)
		for i, k := range keys {
			wv, wok := scalar.Lookup(k)
			if gotV[i] != wv || gotOK[i] != wok {
				t.Fatalf("round %d: QueryBatch[%d] key %d = (%d,%v), want (%d,%v)",
					round, i, k, gotV[i], gotOK[i], wv, wok)
			}
		}
	}

	// Same end state.
	for u := 0; u < units; u++ {
		if batched.UnitState(u) != scalar.UnitState(u) || batched.UnitLen(u) != scalar.UnitLen(u) {
			t.Fatalf("unit %d diverged after batched rounds", u)
		}
	}
}

// TestFlatZeroAlloc pins the zero-allocation contract of the hot paths:
// Update, Lookup, InsertTail and the steady-state batch walks.
func TestFlatZeroAlloc(t *testing.T) {
	a := NewFlatArray3(1<<10, 1, nil)
	keys := make([]uint64, 256)
	vals := make([]uint64, 256)
	oks := make([]bool, 256)
	r := rand.New(rand.NewSource(2))
	for i := range keys {
		keys[i] = uint64(r.Int63n(1 << 12))
	}

	var k uint64
	if n := testing.AllocsPerRun(1000, func() {
		k++
		a.Update(k&0xfff, k)
	}); n != 0 {
		t.Errorf("Update allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		k++
		a.Lookup(k & 0xfff)
	}); n != 0 {
		t.Errorf("Lookup allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		k++
		a.InsertTail(k&0xfff, k)
	}); n != 0 {
		t.Errorf("InsertTail allocates %v/op, want 0", n)
	}

	a.UpdateBatch(keys, vals) // grow the batch scratch once
	if n := testing.AllocsPerRun(100, func() {
		a.UpdateBatch(keys, vals)
	}); n != 0 {
		t.Errorf("UpdateBatch allocates %v/batch, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		a.QueryBatch(keys, vals, oks)
	}); n != 0 {
		t.Errorf("QueryBatch allocates %v/batch, want 0", n)
	}
}

// TestFlatInvariants runs the structural invariant checks of
// invariants_test.go over the flat array's units.
func TestFlatInvariants(t *testing.T) {
	const units = 16
	a := NewFlatArray3(units, 5, nil)
	r := rand.New(rand.NewSource(13))
	for step := 0; step < 20000; step++ {
		k := uint64(r.Int63n(units*6)) + 1
		if r.Intn(4) == 0 {
			a.InsertTail(k, uint64(step))
		} else {
			a.Update(k, uint64(step))
		}
	}
	total := 0
	for u := 0; u < units; u++ {
		size := a.UnitLen(u)
		total += size
		if size > 3 {
			t.Fatalf("unit %d occupancy %d > 3", u, size)
		}
		if s := a.UnitState(u); s > 5 {
			t.Fatalf("unit %d invalid state %d", u, s)
		}
		seen := map[uint64]bool{}
		for i := 0; i < size; i++ {
			k := a.UnitKeyAt(u, i)
			if seen[k] {
				t.Fatalf("unit %d holds duplicate key %d", u, k)
			}
			seen[k] = true
			if a.UnitIndex(k) != u {
				t.Fatalf("key %d stored in unit %d but hashes to %d", k, u, a.UnitIndex(k))
			}
			if _, ok := a.Lookup(k); !ok {
				t.Fatalf("resident key %d not found by Lookup", k)
			}
		}
	}
	if total != a.Len() {
		t.Fatalf("Len() %d != summed occupancy %d", a.Len(), total)
	}
	count := 0
	a.Range(func(k, v uint64) bool { count++; return true })
	if count != total {
		t.Fatalf("Range visited %d pairs, want %d", count, total)
	}
}
