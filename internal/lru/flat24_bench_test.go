package lru

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// benchFlatLadder is the shared generic-vs-flat update ladder behind
// BenchmarkFlatVsGeneric2/4 — the same three rungs as BenchmarkFlatVsGeneric
// runs for the 3-wide core.
func benchFlatLadder(b *testing.B, newGen func() *Array[uint64], newFlat func() FlatCore) {
	keys := flatBenchKeys()
	mask := uint64(len(keys) - 1)

	b.Run("core=generic", func(b *testing.B) {
		a := newGen()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k := keys[uint64(i)&mask]
			a.Update(k, k)
		}
	})
	b.Run("core=flat", func(b *testing.B) {
		a := newFlat()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k := keys[uint64(i)&mask]
			a.Update(k, k)
		}
	})
	b.Run("core=flat-batch", func(b *testing.B) {
		a := newFlat()
		const batch = 256
		vals := make([]uint64, batch)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i += batch {
			lo := uint64(i) & mask
			end := lo + batch
			if end > uint64(len(keys)) {
				end = uint64(len(keys))
			}
			ks := keys[lo:end]
			a.UpdateBatch(ks, vals[:len(ks)])
		}
	})
}

// BenchmarkFlatVsGeneric2 is the BenchmarkFlatVsGeneric ladder for the
// 2-wide core: Array of *Unit2 behind UnitCache against FlatArray2, scalar
// and batched. `make bench` gates the flat rungs against the generic one.
func BenchmarkFlatVsGeneric2(b *testing.B) {
	benchFlatLadder(b,
		func() *Array[uint64] { return newGenericArray(2, flatBenchUnits, 1, nil) },
		func() FlatCore { return NewFlatArray2(flatBenchUnits, 1, nil) })
}

// BenchmarkFlatVsGeneric4 is the same ladder for the 4-wide core.
func BenchmarkFlatVsGeneric4(b *testing.B) {
	benchFlatLadder(b,
		func() *Array[uint64] { return newGenericArray(4, flatBenchUnits, 1, nil) },
		func() FlatCore { return NewFlatArray4(flatBenchUnits, 1, nil) })
}

// BenchmarkFlatVsGenericSeries replays the paper's two-pass access — Query
// for the cached_flag level, then Reply routed by it — through the generic
// Series and the FlatSeries at equal geometry (4 levels, 2^14 units of
// capacity 3 each: the same total entry count as the unit ladders).
func BenchmarkFlatVsGenericSeries(b *testing.B) {
	const levels, units = 4, 1 << 14
	keys := flatBenchKeys()
	mask := uint64(len(keys) - 1)

	b.Run("core=generic", func(b *testing.B) {
		s := NewSeries3[uint64](levels, units, 1, nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k := keys[uint64(i)&mask]
			_, level, _ := s.Query(k)
			s.Reply(k, k, level)
		}
	})
	b.Run("core=flat", func(b *testing.B) {
		s := NewFlatSeries(3, levels, units, 1, nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k := keys[uint64(i)&mask]
			_, level, _ := s.Query(k)
			s.Reply(k, k, level)
		}
	})
}

// BenchmarkFlatReaders measures wait-free Query throughput under a live
// writer: one goroutine streams UpdateBatch over the array non-stop while
// 1, 2, 4 or 8 readers split b.N lookups between them. With the seqlock
// there is no reader-writer lock to convoy on, so per-op cost must not
// degrade as readers are added (and scales down with them when the machine
// has the cores); `make bench` gates readers=8 against readers=1.
func BenchmarkFlatReaders(b *testing.B) {
	keys := flatBenchKeys()
	mask := uint64(len(keys) - 1)

	for _, readers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("readers=%d", readers), func(b *testing.B) {
			a := NewFlatArray3(flatBenchUnits, 1, nil)
			for _, k := range keys {
				a.Update(k, k)
			}

			var stop atomic.Bool
			var writerDone sync.WaitGroup
			writerDone.Add(1)
			go func() {
				defer writerDone.Done()
				const batch = 256
				vals := make([]uint64, batch)
				for i := 0; !stop.Load(); i += batch {
					lo := uint64(i) & mask
					end := lo + batch
					if end > uint64(len(keys)) {
						end = uint64(len(keys))
					}
					ks := keys[lo:end]
					a.UpdateBatch(ks, vals[:len(ks)])
				}
			}()

			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			per := b.N / readers
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func(off uint64) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						a.Lookup(keys[(uint64(i)+off)&mask])
					}
				}(uint64(keys[r]))
			}
			wg.Wait()
			b.StopTimer()
			stop.Store(true)
			writerDone.Wait()
		})
	}
}
