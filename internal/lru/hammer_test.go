package lru

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// hammerVal is the value every hammer writer binds to a key: an invertible
// mix, so a reader can verify any observed hit against the key alone. A
// torn read that pairs key registers from one unit generation with value
// registers from another produces a value that fails this check — the
// property the seqlock exists to rule out.
func hammerVal(k uint64) uint64 { return k*0x9E3779B97F4A7C15 + 1 }

// hammerCore runs one writer streaming UpdateBatch/InsertTail over a flat
// core while reader goroutines spin on Lookup and QueryBatch, asserting
// every observed hit carries the value its key actually held. Run under
// -race this also proves the seqlock protocol is explicit to the race
// detector (the portable build's atomic stores).
func hammerCore(t *testing.T, core FlatCore) {
	t.Helper()
	const (
		readers   = 4
		keySpace  = 1 << 12
		batchSize = 256
		batches   = 400
	)

	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan string, readers)

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			qk := make([]uint64, 64)
			qv := make([]uint64, 64)
			qok := make([]bool, 64)
			x := seed
			for !stop.Load() {
				// Scalar reads.
				for i := 0; i < 64; i++ {
					x = x*6364136223846793005 + 1442695040888963407
					k := x%keySpace + 1
					if v, ok := core.Lookup(k); ok && v != hammerVal(k) {
						errs <- fmt.Sprintf("Lookup(%d) = %d, want %d", k, v, hammerVal(k))
						return
					}
				}
				// Batched reads.
				for i := range qk {
					x = x*6364136223846793005 + 1442695040888963407
					qk[i] = x%keySpace + 1
				}
				core.QueryBatch(qk, qv, qok)
				for i, k := range qk {
					if qok[i] && qv[i] != hammerVal(k) {
						errs <- fmt.Sprintf("QueryBatch(%d) = %d, want %d", k, qv[i], hammerVal(k))
						return
					}
				}
			}
		}(uint64(r)*0x9e3779b9 + 1)
	}

	// The single writer: batched updates plus scalar Update/InsertTail, the
	// full mutator surface the engine and the series connection exercise.
	keys := make([]uint64, batchSize)
	vals := make([]uint64, batchSize)
	w := uint64(12345)
	for b := 0; b < batches; b++ {
		for i := range keys {
			w = w*6364136223846793005 + 1442695040888963407
			keys[i] = w%keySpace + 1
			vals[i] = hammerVal(keys[i])
		}
		core.UpdateBatch(keys, vals)
		for i := 0; i < 16; i++ {
			w = w*6364136223846793005 + 1442695040888963407
			k := w%keySpace + 1
			if i%2 == 0 {
				core.Update(k, hammerVal(k))
			} else {
				core.InsertTail(k, hammerVal(k))
			}
		}
	}
	stop.Store(true)
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestFlatHammerConcurrentReaders is the tentpole's correctness gate: for
// each flat core, readers observe only values their keys actually held
// while the writer streams mutations — wait-free reads with no locks and
// no torn snapshots.
func TestFlatHammerConcurrentReaders(t *testing.T) {
	for _, unitCap := range []int{2, 3, 4} {
		t.Run(fmt.Sprintf("unitcap=%d", unitCap), func(t *testing.T) {
			hammerCore(t, NewFlatCore(unitCap, 1<<8, 1, nil))
		})
	}
}

// TestFlatSeriesHammerConcurrentReaders runs the same discipline over the
// series connection: the writer drives the §3.2 query/reply cycle
// (promotions, inserts and demotion cascades across levels) while readers
// query all levels. A key mid-demotion may be missed entirely — exactly as
// on the switch — but a hit must always carry the key's bound value.
func TestFlatSeriesHammerConcurrentReaders(t *testing.T) {
	const (
		readers  = 4
		keySpace = 1 << 10
		replies  = 60000
	)
	s := NewFlatSeries(3, 4, 1<<6, 1, nil)

	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan string, readers)

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			x := seed
			for !stop.Load() {
				for i := 0; i < 64; i++ {
					x = x*6364136223846793005 + 1442695040888963407
					k := x%keySpace + 1
					if v, _, ok := s.Query(k); ok && v != hammerVal(k) {
						errs <- fmt.Sprintf("Query(%d) = %d, want %d", k, v, hammerVal(k))
						return
					}
				}
			}
		}(uint64(r)*0x9e3779b9 + 1)
	}

	w := uint64(999)
	for i := 0; i < replies; i++ {
		w = w*6364136223846793005 + 1442695040888963407
		k := w%keySpace + 1
		// The writer's own query/reply round trip — promotion on hit,
		// insert + demotion cascade on miss.
		_, level, _ := s.Query(k)
		s.Reply(k, hammerVal(k), level)
	}
	stop.Store(true)
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
