package lru

import (
	"math/rand"
	"testing"
)

func TestIdealBasics(t *testing.T) {
	c := NewIdeal[uint64](3, nil)
	for _, k := range []uint64{1, 2, 3} {
		c.Update(k, k*10)
	}
	if got := keysOf[uint64](c); !equalKeys(got, []uint64{3, 2, 1}) {
		t.Fatalf("order = %v", got)
	}
	c.Update(1, 100) // promote
	if got := keysOf[uint64](c); !equalKeys(got, []uint64{1, 3, 2}) {
		t.Fatalf("after promote = %v", got)
	}
	res := c.Update(4, 40)
	if !res.Evicted || res.EvictedKey != 2 || res.EvictedValue != 20 {
		t.Fatalf("eviction: %+v", res)
	}
	if c.Len() != 3 || c.Cap() != 3 {
		t.Errorf("len=%d cap=%d", c.Len(), c.Cap())
	}
}

func TestIdealLookupReadOnly(t *testing.T) {
	c := NewIdeal[uint64](3, nil)
	c.Update(1, 10)
	c.Update(2, 20)
	c.Lookup(1)
	if got := keysOf[uint64](c); !equalKeys(got, []uint64{2, 1}) {
		t.Errorf("Lookup changed order: %v", got)
	}
}

func TestIdealInsertTail(t *testing.T) {
	c := NewIdeal[uint64](3, nil)
	c.Update(1, 10)
	c.InsertTail(2, 20)
	if got := keysOf[uint64](c); !equalKeys(got, []uint64{1, 2}) {
		t.Fatalf("order = %v, want [1 2]", got)
	}
	// Tail entry is evicted first.
	c.Update(3, 30)
	res := c.Update(4, 40)
	if res.EvictedKey != 2 {
		t.Errorf("evicted %d, want tail-inserted 2", res.EvictedKey)
	}
}

func TestIdealMerge(t *testing.T) {
	c := NewIdeal[uint64](2, func(a, b uint64) uint64 { return a + b })
	c.Update(1, 5)
	c.Update(1, 7)
	if v, _ := c.Lookup(1); v != 12 {
		t.Errorf("merged = %d, want 12", v)
	}
}

func TestIdealPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewIdeal(0) did not panic")
		}
	}()
	NewIdeal[int](0, nil)
}

// TestSimilarityIdealIsOne: an ideal LRU must score exactly 1.
func TestSimilarityIdealIsOne(t *testing.T) {
	c := NewIdeal[uint64](64, nil)
	tr := NewSimilarityTracker()
	r := rand.New(rand.NewSource(1))
	zipf := rand.NewZipf(r, 1.1, 1, 1000)
	for step := 0; step < 50000; step++ {
		k := zipf.Uint64()
		res := c.Update(k, uint64(step))
		tr.Touch(k)
		if res.Evicted {
			tr.Evict(res.EvictedKey)
		}
	}
	if tr.Evictions() == 0 {
		t.Fatal("no evictions sampled")
	}
	if sim := tr.Similarity(); sim != 1 {
		t.Errorf("ideal LRU similarity = %v, want exactly 1", sim)
	}
}

// TestSimilarityRandomEviction: a cache that evicts uniformly at random
// should score around (n+1)/(2n) ≈ 0.5.
func TestSimilarityRandomEviction(t *testing.T) {
	const cap = 256
	entries := map[uint64]bool{}
	tr := NewSimilarityTracker()
	r := rand.New(rand.NewSource(2))
	for step := 0; step < 100000; step++ {
		k := uint64(r.Intn(4096))
		if entries[k] {
			tr.Touch(k)
			continue
		}
		if len(entries) >= cap {
			// Evict a uniformly random entry.
			idx := r.Intn(len(entries))
			for victim := range entries {
				if idx == 0 {
					delete(entries, victim)
					tr.Evict(victim)
					break
				}
				idx--
			}
		}
		entries[k] = true
		tr.Touch(k)
	}
	sim := tr.Similarity()
	if sim < 0.45 || sim > 0.55 {
		t.Errorf("random eviction similarity = %.3f, want ≈0.5", sim)
	}
}

// TestSimilarityOrdering: P4LRU3 must score higher similarity than the
// 1-entry hash bucket (P4LRU1) on a skewed trace — the Figure 15(b) ordering.
func TestSimilarityOrdering(t *testing.T) {
	run := func(unitCap int) float64 {
		var arr *Array[uint64]
		switch unitCap {
		case 1:
			arr = NewArray(512, 1, func() UnitCache[uint64] { return NewUnit[uint64](1, nil) })
		case 3:
			arr = NewArray3[uint64](512/3+1, 1, nil)
		}
		tr := NewSimilarityTracker()
		r := rand.New(rand.NewSource(3))
		zipf := rand.NewZipf(r, 1.05, 1, 1<<14)
		for step := 0; step < 80000; step++ {
			k := zipf.Uint64()
			res := arr.Update(k, uint64(step))
			tr.Touch(k)
			if res.Evicted {
				tr.Evict(res.EvictedKey)
			}
		}
		return tr.Similarity()
	}
	s1, s3 := run(1), run(3)
	if s3 <= s1 {
		t.Errorf("similarity P4LRU3=%.3f not above P4LRU1=%.3f", s3, s1)
	}
}

func TestSimilarityTrackerBookkeeping(t *testing.T) {
	tr := NewSimilarityTracker()
	tr.Touch(1)
	tr.Touch(2)
	tr.Touch(1) // re-touch
	if tr.Tracked() != 2 {
		t.Errorf("tracked = %d, want 2", tr.Tracked())
	}
	tr.Evict(1)
	if tr.Tracked() != 1 {
		t.Errorf("tracked after evict = %d, want 1", tr.Tracked())
	}
	tr.Evict(99) // unknown key ignored
	if tr.Tracked() != 1 || tr.Evictions() != 1 {
		t.Errorf("unknown evict changed state: tracked=%d evictions=%d", tr.Tracked(), tr.Evictions())
	}
	// Evict(1) above expelled the fresher of two entries (rank 1/2 = 0.5);
	// evicting the last remaining entry scores 1/1. Mean = 0.75.
	tr.Evict(2)
	if sim := tr.Similarity(); sim != 0.75 {
		t.Errorf("similarity = %v, want 0.75", sim)
	}
}

func TestSimilarityEmptyIsOne(t *testing.T) {
	if got := NewSimilarityTracker().Similarity(); got != 1 {
		t.Errorf("empty similarity = %v", got)
	}
}
