package lru

import "fmt"

// FlatSeries is the series-connection technique (§3.2) over flat cores: L
// seqlock-versioned flat arrays linked in series, the serving counterpart
// of Series exactly as FlatArray3 is the serving counterpart of Array. The
// level structure, per-level hash seeds and the query/reply split are
// identical to Series (the differential tests pin this), so LruIndex-style
// deployments keep their replacement behaviour while gaining the flat
// layout and wait-free reads on every level.
//
// Concurrency: one writer (Reply, InsertTail demotions, Reset), any number
// of readers (Query, QueryBatch, Len, Contains, Range). A reply that
// demotes an evicted entry down the series moves it between levels in two
// separate unit mutations; a concurrent reader can miss the entry during
// that window (exactly as a packet racing a reply on the switch can), but
// never observes a torn unit or a value the key did not hold.
type FlatSeries struct {
	levels []FlatCore
}

// NewFlatSeries builds a series of `levels` flat arrays of unit capacity
// unitCap (2, 3 or 4 — the capacities with flat cores) and numUnits units
// each. Level i hashes with seed+i*0x9e3779b9, the same per-level family
// walk as NewSeries, so a FlatSeries and a Series with equal parameters
// place every key identically.
func NewFlatSeries(unitCap, levels, numUnits int, seed uint64, merge MergeFunc[uint64]) *FlatSeries {
	if levels < 1 {
		panic(fmt.Sprintf("lru: series with %d levels", levels))
	}
	s := &FlatSeries{levels: make([]FlatCore, levels)}
	for i := range s.levels {
		s.levels[i] = NewFlatCore(unitCap, numUnits, seed+uint64(i)*0x9e3779b9, merge)
	}
	return s
}

// Levels returns the number of series-connected arrays.
func (s *FlatSeries) Levels() int { return len(s.levels) }

// Level returns the i-th flat core (0-based).
func (s *FlatSeries) Level(i int) FlatCore { return s.levels[i] }

// UnitCap returns the per-unit capacity of the levels.
func (s *FlatSeries) UnitCap() int { return s.levels[0].UnitCap() }

// Capacity returns the total entry capacity across levels.
func (s *FlatSeries) Capacity() int {
	total := 0
	for _, a := range s.levels {
		total += a.Capacity()
	}
	return total
}

// Len returns the total number of occupied entries across levels.
func (s *FlatSeries) Len() int {
	total := 0
	for _, a := range s.levels {
		total += a.Len()
	}
	return total
}

// Query is the read-only query path: it consults every level and returns
// the cached value and the 1-based level that holds k (the packet's
// cached_flag), or level 0 on a miss. Wait-free and safe concurrent with
// the writer.
func (s *FlatSeries) Query(k uint64) (v uint64, level int, ok bool) {
	for i, a := range s.levels {
		if val, found := a.Lookup(k); found {
			return val, i + 1, true
		}
	}
	return 0, 0, false
}

// Reply is the cache-modifying reply path, with the same contract as
// Series.Reply: level ≥ 1 promotes k within that level; level 0 inserts at
// level 1 and demotes each level's eviction to the tail of the next, and
// the entry expelled from the last level is returned.
func (s *FlatSeries) Reply(k, v uint64, level int) Result[uint64] {
	if level < 0 || level > len(s.levels) {
		panic(fmt.Sprintf("lru: reply level %d out of range [0,%d]", level, len(s.levels)))
	}
	if level >= 1 {
		return s.levels[level-1].Update(k, v)
	}
	res := s.levels[0].Update(k, v)
	for i := 1; i < len(s.levels) && res.Evicted; i++ {
		res = s.levels[i].InsertTail(res.EvictedKey, res.EvictedValue)
	}
	return res
}

// Contains reports in how many levels k is cached — the duplication
// diagnostic, mirroring Series.Contains.
func (s *FlatSeries) Contains(k uint64) (levels int) {
	for _, a := range s.levels {
		if _, found := a.Lookup(k); found {
			levels++
		}
	}
	return levels
}

// Range calls fn for every cached (key, value) pair across all levels until
// fn returns false; per-unit seqlock snapshots as in the flat arrays.
func (s *FlatSeries) Range(fn func(k, v uint64) bool) {
	for _, a := range s.levels {
		stopped := false
		a.Range(func(k, v uint64) bool {
			if !fn(k, v) {
				stopped = true
				return false
			}
			return true
		})
		if stopped {
			return
		}
	}
}

// Reset empties every level.
func (s *FlatSeries) Reset() {
	for _, a := range s.levels {
		a.Reset()
	}
}
