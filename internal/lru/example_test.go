package lru_test

import (
	"fmt"

	"github.com/p4lru/p4lru/internal/lru"
)

// A single P4LRU3 unit is an exact 3-entry LRU cache whose state machine is
// the paper's stateful-ALU arithmetic.
func ExampleUnit3() {
	u := lru.NewUnit3[string](nil)
	u.Update(1, "one")
	u.Update(2, "two")
	u.Update(3, "three")

	u.Update(1, "ONE") // promote 1 to most recently used
	res := u.Update(4, "four")
	fmt.Printf("evicted key %d (LRU)\n", res.EvictedKey)

	v, ok := u.Lookup(1)
	fmt.Printf("key 1: %q %v\n", v, ok)
	// Output:
	// evicted key 2 (LRU)
	// key 1: "ONE" true
}

// The parallel connection replaces hash-table buckets with P4LRU units,
// scaling to arbitrary capacity (§1.2).
func ExampleArray() {
	a := lru.NewArray3[uint64](1024, 42, nil)
	for k := uint64(1); k <= 5000; k++ {
		a.Update(k, k*10)
	}
	// Hashing spreads 5000 keys over 1024 three-entry units; units that saw
	// fewer than three keys stay partially filled.
	fmt.Printf("capacity %d, holding %d entries\n", a.Capacity(), a.Len())
	v, ok := a.Lookup(5000)
	fmt.Printf("recent key 5000: %d %v\n", v, ok)
	// Output:
	// capacity 3072, holding 2900 entries
	// recent key 5000: 50000 true
}

// The series connection (§3.2) separates the read-only query path from the
// mutating reply path, so keys never duplicate across levels.
func ExampleSeries() {
	s := lru.NewSeries3[uint64](4, 64, 1, nil)

	_, level, ok := s.Query(7)
	fmt.Printf("before insert: level=%d ok=%v\n", level, ok)

	s.Reply(7, 700, level) // miss path: insert at level 1

	v, level, ok := s.Query(7)
	fmt.Printf("after insert: value=%d level=%d ok=%v\n", v, level, ok)
	// Output:
	// before insert: level=0 ok=false
	// after insert: value=700 level=1 ok=true
}

// A write-cache accumulates values on hits — LruMon's per-flow byte counts.
func ExampleUnit3_writeCache() {
	add := func(old, in uint64) uint64 { return old + in }
	u := lru.NewUnit3[uint64](add)
	u.Update(0xfeed, 1500)
	u.Update(0xfeed, 64)
	total, _ := u.Lookup(0xfeed)
	fmt.Println("flow bytes:", total)
	// Output:
	// flow bytes: 1564
}
