package lru

import (
	"fmt"

	"github.com/p4lru/p4lru/internal/perm"
)

// State2 and State3 are the integer-encoded cache states of §2.3.1/§2.3.2.
// The zero value is the state of an empty unit.
type (
	State2 = uint8
	State3 = uint8
)

// state3Perms is Table 1 of the paper: the permutation encoded by each
// P4LRU3 state code, 0-based. Even permutations carry even codes.
var state3Perms = [6]perm.Perm{
	0: {1, 2, 0}, // (1 2 3 / 2 3 1)
	1: {0, 2, 1}, // (1 2 3 / 1 3 2)
	2: {2, 0, 1}, // (1 2 3 / 3 1 2)
	3: {2, 1, 0}, // (1 2 3 / 3 2 1)
	4: {0, 1, 2}, // (1 2 3 / 1 2 3) — identity, the initial state
	5: {1, 0, 2}, // (1 2 3 / 2 1 3)
}

// State3Initial is the code of the identity permutation (Table 1).
const State3Initial State3 = 4

// State3Decode returns the permutation encoded by code s.
func State3Decode(s State3) perm.Perm {
	if s > 5 {
		panic(fmt.Sprintf("lru: invalid P4LRU3 state %d", s))
	}
	return state3Perms[s].Clone()
}

// State3Encode returns the Table 1 code of a size-3 permutation.
func State3Encode(p perm.Perm) State3 {
	for s, q := range state3Perms {
		if p.Equal(q) {
			return State3(s)
		}
	}
	panic(fmt.Sprintf("lru: %v is not a size-3 permutation", p))
}

// State3Op1 is the §2.3.2 Operation 1 (incoming key matches key[1]):
// the cache state is unchanged.
func State3Op1(s State3) State3 { return s }

// State3Op2 is the §2.3.2 Operation 2 (incoming key matches key[2]):
//
//	S_new = S ^ 1  if S ≥ 4
//	S_new = S ^ 3  if S ≤ 3
//
// One stateful ALU: a two-branch predicate on the register value and an XOR.
func State3Op2(s State3) State3 {
	if s >= 4 {
		return s ^ 1
	}
	return s ^ 3
}

// State3Op3 is the §2.3.2 Operation 3 (incoming key matches key[3], or is
// not in the cache):
//
//	S_new = S - 2  if S ≥ 2
//	S_new = S + 4  if S ≤ 1
func State3Op3(s State3) State3 {
	if s >= 2 {
		return s - 2
	}
	return s + 4
}

// state3ValPos[s][i] = S(i): the value slot of the key at position i under
// state code s. Derived from Table 1; the data plane realizes the i=0 row as
// a small match table after the state register.
var state3ValPos = func() (t [6][3]uint8) {
	for s, p := range state3Perms {
		for i := 0; i < 3; i++ {
			t[s][i] = uint8(p.Apply(i))
		}
	}
	return
}()

// Unit3 is the P4LRU3 cache unit exactly as deployed on Tofino (§2.3.2):
// three key registers, three value registers, and a state register whose
// transitions are the arithmetic of State3Op1/Op2/Op3.
type Unit3[V any] struct {
	keys  [3]uint64
	vals  [3]V
	state State3
	size  uint8
	merge MergeFunc[V]
}

var _ UnitCache[int] = (*Unit3[int])(nil)

// NewUnit3 returns an empty P4LRU3 unit. merge may be nil for replace-on-hit
// (read-cache) semantics.
func NewUnit3[V any](merge MergeFunc[V]) *Unit3[V] {
	return &Unit3[V]{state: State3Initial, merge: merge}
}

// Len returns the number of occupied entries.
func (u *Unit3[V]) Len() int { return int(u.size) }

// Cap returns 3.
func (u *Unit3[V]) Cap() int { return 3 }

// State returns the current encoded cache state.
func (u *Unit3[V]) State() State3 { return u.state }

// KeyAt returns the i-th key in LRU order (0 = most recently used).
func (u *Unit3[V]) KeyAt(i int) uint64 {
	if i < 0 || i >= int(u.size) {
		panic(fmt.Sprintf("lru: KeyAt(%d) with %d entries", i, u.size))
	}
	return u.keys[i]
}

// Lookup returns the value mapped to k without modifying the unit.
func (u *Unit3[V]) Lookup(k uint64) (V, bool) {
	for i := 0; i < int(u.size); i++ {
		if u.keys[i] == k {
			return u.vals[state3ValPos[u.state][i]], true
		}
	}
	var zero V
	return zero, false
}

// Update is Algorithm 1 specialized to n=3 with encoded state transitions.
func (u *Unit3[V]) Update(k uint64, v V) Result[V] {
	var res Result[V]

	hitPos := -1
	for i := 0; i < int(u.size); i++ {
		if u.keys[i] == k {
			hitPos = i
			break
		}
	}

	var op int
	switch {
	case hitPos >= 0:
		res.Hit = true
		op = hitPos
	case u.size < 3:
		op = int(u.size)
		u.size++
	default:
		op = 2
		res.Evicted = true
		res.EvictedKey = u.keys[2]
	}

	// Step 1: rotate keys[0..op] forward.
	switch op {
	case 1:
		u.keys[1] = u.keys[0]
	case 2:
		u.keys[2] = u.keys[1]
		u.keys[1] = u.keys[0]
	}
	u.keys[0] = k

	// Step 2: stateful-ALU arithmetic transition.
	switch op {
	case 0:
		u.state = State3Op1(u.state)
	case 1:
		u.state = State3Op2(u.state)
	case 2:
		u.state = State3Op3(u.state)
	}

	// Step 3: value slot of the most recently used key.
	slot := state3ValPos[u.state][0]
	if res.Evicted {
		res.EvictedValue = u.vals[slot]
	}
	if res.Hit && u.merge != nil {
		u.vals[slot] = u.merge(u.vals[slot], v)
	} else {
		u.vals[slot] = v
	}
	return res
}

// InsertTail stores k as the least recently used entry without a state
// transition (series-connection demotion, §3.2).
func (u *Unit3[V]) InsertTail(k uint64, v V) Result[V] {
	var res Result[V]
	for i := 0; i < int(u.size); i++ {
		if u.keys[i] == k {
			res.Hit = true
			u.vals[state3ValPos[u.state][i]] = v
			return res
		}
	}
	if u.size < 3 {
		u.keys[u.size] = k
		u.vals[state3ValPos[u.state][u.size]] = v
		u.size++
		return res
	}
	slot := state3ValPos[u.state][2]
	res.Evicted = true
	res.EvictedKey = u.keys[2]
	res.EvictedValue = u.vals[slot]
	u.keys[2] = k
	u.vals[slot] = v
	return res
}

// Reset empties the unit and restores the initial state.
func (u *Unit3[V]) Reset() {
	u.size = 0
	u.state = State3Initial
}
