package lru

import (
	"math/rand"
	"testing"
)

// keysOf returns the keys of a unit in LRU order.
func keysOf[V any](u UnitCache[V]) []uint64 {
	ks := make([]uint64, u.Len())
	for i := range ks {
		ks[i] = u.KeyAt(i)
	}
	return ks
}

func equalKeys(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestUnitFillAndOrder(t *testing.T) {
	u := NewUnit[int](3, nil)
	if u.Cap() != 3 || u.Len() != 0 {
		t.Fatalf("fresh unit: cap=%d len=%d", u.Cap(), u.Len())
	}
	for i, k := range []uint64{10, 20, 30} {
		res := u.Update(k, int(k))
		if res.Hit || res.Evicted {
			t.Fatalf("insert %d: hit=%v evicted=%v", k, res.Hit, res.Evicted)
		}
		if u.Len() != i+1 {
			t.Fatalf("after insert %d: len=%d", k, u.Len())
		}
	}
	if got := keysOf[int](u); !equalKeys(got, []uint64{30, 20, 10}) {
		t.Errorf("LRU order = %v, want [30 20 10]", got)
	}
}

func TestUnitHitPromotes(t *testing.T) {
	u := NewUnit[int](3, nil)
	for _, k := range []uint64{1, 2, 3} {
		u.Update(k, int(k))
	}
	res := u.Update(1, 100)
	if !res.Hit || res.Evicted {
		t.Fatalf("hit on 1: %+v", res)
	}
	if got := keysOf[int](u); !equalKeys(got, []uint64{1, 3, 2}) {
		t.Errorf("order after promote = %v, want [1 3 2]", got)
	}
	if v, ok := u.Lookup(1); !ok || v != 100 {
		t.Errorf("Lookup(1) = %d,%v", v, ok)
	}
}

func TestUnitEvictsLRU(t *testing.T) {
	u := NewUnit[int](3, nil)
	for _, k := range []uint64{1, 2, 3} {
		u.Update(k, int(k)*10)
	}
	res := u.Update(4, 40)
	if res.Hit || !res.Evicted {
		t.Fatalf("insert 4: %+v", res)
	}
	if res.EvictedKey != 1 || res.EvictedValue != 10 {
		t.Errorf("evicted %d=%d, want 1=10", res.EvictedKey, res.EvictedValue)
	}
	if _, ok := u.Lookup(1); ok {
		t.Error("evicted key still present")
	}
}

// TestUnitPaperExamples walks the two worked examples of §2.2 (n=5).
func TestUnitPaperExamples(t *testing.T) {
	const (
		kA, kB, kC, kD, kE, kF uint64 = 'A', 'B', 'C', 'D', 'E', 'F'
	)
	u := NewUnit[string](5, func(old, in string) string { return old + "+" + in })
	// Insert so that A ends most recent, E least recent.
	for _, p := range []struct {
		k uint64
		v string
	}{{kE, "VE"}, {kD, "VD"}, {kC, "VC"}, {kB, "VB"}, {kA, "VA"}} {
		u.Update(p.k, p.v)
	}
	if got := keysOf[string](u); !equalKeys(got, []uint64{kA, kB, kC, kD, kE}) {
		t.Fatalf("setup order = %v", got)
	}

	// The pipeline-friendliness invariant: promotions must not move values.
	// Record each key's value slot before Example 1.
	slotOf := func(k uint64) int {
		for i := 0; i < u.Len(); i++ {
			if u.KeyAt(i) == k {
				return u.State().Apply(i)
			}
		}
		t.Fatalf("key %c not found", k)
		return -1
	}
	before := map[uint64]int{}
	for _, k := range []uint64{kA, kB, kC, kD, kE} {
		before[k] = slotOf(k)
	}

	// Example 1: ⟨K_D, V'_D⟩ arrives — hit, keys rotate to {D,A,B,C,E},
	// V_D is updated in place.
	res := u.Update(kD, "V'D")
	if !res.Hit || res.Evicted {
		t.Fatalf("example 1: %+v", res)
	}
	if got := keysOf[string](u); !equalKeys(got, []uint64{kD, kA, kB, kC, kE}) {
		t.Errorf("example 1 order = %v, want [D A B C E]", got)
	}
	if v, _ := u.Lookup(kD); v != "VD+V'D" {
		t.Errorf("example 1 value = %q, want merged VD+V'D", v)
	}
	for _, k := range []uint64{kA, kB, kC, kD, kE} {
		if slotOf(k) != before[k] {
			t.Errorf("example 1: value slot of %c moved %d→%d", k, before[k], slotOf(k))
		}
	}

	// Example 2: ⟨K_F, V_F⟩ arrives — miss, E is evicted, F reuses E's
	// value slot.
	slotE := slotOf(kE)
	res = u.Update(kF, "VF")
	if res.Hit || !res.Evicted || res.EvictedKey != kE || res.EvictedValue != "VE" {
		t.Fatalf("example 2: %+v", res)
	}
	if got := keysOf[string](u); !equalKeys(got, []uint64{kF, kD, kA, kB, kC}) {
		t.Errorf("example 2 order = %v, want [F D A B C]", got)
	}
	if slotOf(kF) != slotE {
		t.Errorf("example 2: F stored at slot %d, want evicted E's slot %d", slotOf(kF), slotE)
	}
	// All surviving keys keep their slots.
	for _, k := range []uint64{kA, kB, kC, kD} {
		if slotOf(k) != before[k] {
			t.Errorf("example 2: value slot of %c moved", k)
		}
	}
}

// TestUnitMatchesIdeal: a P4LRU unit of capacity n IS an exact LRU of
// capacity n — differential test against the classical implementation.
func TestUnitMatchesIdeal(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 8} {
		u := NewUnit[uint64](n, nil)
		id := NewIdeal[uint64](n, nil)
		r := rand.New(rand.NewSource(int64(n)))
		for step := 0; step < 20000; step++ {
			k := uint64(r.Intn(3 * n)) // small key space to force hits+evictions
			v := uint64(step)
			ru, ri := u.Update(k, v), id.Update(k, v)
			if ru.Hit != ri.Hit || ru.Evicted != ri.Evicted ||
				ru.EvictedKey != ri.EvictedKey || ru.EvictedValue != ri.EvictedValue {
				t.Fatalf("n=%d step %d key %d: unit %+v vs ideal %+v", n, step, k, ru, ri)
			}
			if !equalKeys(keysOf[uint64](u), keysOf[uint64](id)) {
				t.Fatalf("n=%d step %d: order %v vs %v", n, step, keysOf[uint64](u), keysOf[uint64](id))
			}
		}
	}
}

func TestUnitMergeSemantics(t *testing.T) {
	add := func(old, in uint64) uint64 { return old + in }
	u := NewUnit[uint64](3, add)
	u.Update(7, 5)
	u.Update(7, 3)
	if v, _ := u.Lookup(7); v != 8 {
		t.Errorf("merged value = %d, want 8", v)
	}
	// Replace semantics when merge is nil.
	u2 := NewUnit[uint64](3, nil)
	u2.Update(7, 5)
	u2.Update(7, 3)
	if v, _ := u2.Lookup(7); v != 3 {
		t.Errorf("replaced value = %d, want 3", v)
	}
	// A re-inserted key after eviction starts fresh (no stale merge).
	u.Update(8, 1)
	u.Update(9, 1)
	u.Update(10, 1) // evicts 7
	u.Update(7, 2)  // 7 re-enters
	if v, _ := u.Lookup(7); v != 2 {
		t.Errorf("re-inserted value = %d, want 2 (no stale merge)", v)
	}
}

func TestUnitInsertTail(t *testing.T) {
	u := NewUnit[int](3, nil)
	res := u.InsertTail(1, 10)
	if res.Hit || res.Evicted {
		t.Fatalf("tail insert into empty: %+v", res)
	}
	u.Update(2, 20) // 2 becomes MRU
	if got := keysOf[int](u); !equalKeys(got, []uint64{2, 1}) {
		t.Fatalf("order = %v, want [2 1]", got)
	}
	u.InsertTail(3, 30)
	if got := keysOf[int](u); !equalKeys(got, []uint64{2, 1, 3}) {
		t.Fatalf("order = %v, want [2 1 3]", got)
	}
	// Full: tail insert replaces the LRU entry.
	res = u.InsertTail(4, 40)
	if !res.Evicted || res.EvictedKey != 3 || res.EvictedValue != 30 {
		t.Fatalf("tail replace: %+v", res)
	}
	if got := keysOf[int](u); !equalKeys(got, []uint64{2, 1, 4}) {
		t.Fatalf("order = %v, want [2 1 4]", got)
	}
	// Duplicate guard: tail insert of a cached key only updates its value.
	res = u.InsertTail(2, 99)
	if !res.Hit || res.Evicted {
		t.Fatalf("duplicate tail insert: %+v", res)
	}
	if v, _ := u.Lookup(2); v != 99 {
		t.Errorf("value after duplicate tail insert = %d", v)
	}
	if u.Len() != 3 {
		t.Errorf("len changed on duplicate tail insert: %d", u.Len())
	}
}

func TestUnitLookupReadOnly(t *testing.T) {
	u := NewUnit[int](3, nil)
	for _, k := range []uint64{1, 2, 3} {
		u.Update(k, int(k))
	}
	before := keysOf[int](u)
	stateBefore := u.State()
	if _, ok := u.Lookup(1); !ok {
		t.Fatal("lookup miss on cached key")
	}
	if _, ok := u.Lookup(42); ok {
		t.Fatal("lookup hit on absent key")
	}
	if !equalKeys(before, keysOf[int](u)) || !stateBefore.Equal(u.State()) {
		t.Error("Lookup modified the unit")
	}
}

func TestUnitReset(t *testing.T) {
	u := NewUnit[int](3, nil)
	for _, k := range []uint64{1, 2, 3} {
		u.Update(k, int(k))
	}
	u.Reset()
	if u.Len() != 0 || !u.State().IsIdentity() {
		t.Errorf("after reset: len=%d state=%v", u.Len(), u.State())
	}
	if _, ok := u.Lookup(1); ok {
		t.Error("reset unit still contains keys")
	}
}

func TestUnitCapacityOne(t *testing.T) {
	u := NewUnit[int](1, nil)
	u.Update(1, 10)
	res := u.Update(2, 20)
	if !res.Evicted || res.EvictedKey != 1 || res.EvictedValue != 10 {
		t.Fatalf("n=1 eviction: %+v", res)
	}
	res = u.Update(2, 30)
	if !res.Hit {
		t.Fatalf("n=1 hit: %+v", res)
	}
	if v, _ := u.Lookup(2); v != 30 {
		t.Errorf("n=1 value = %d", v)
	}
}

func TestNewUnitPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewUnit(0) did not panic")
		}
	}()
	NewUnit[int](0, nil)
}

func TestKeyAtPanicsOutOfRange(t *testing.T) {
	u := NewUnit[int](3, nil)
	u.Update(1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("KeyAt out of range did not panic")
		}
	}()
	u.KeyAt(1)
}
