package engine

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/p4lru/p4lru/internal/obs"
	"github.com/p4lru/p4lru/internal/policy"
	"github.com/p4lru/p4lru/internal/resilience"
)

// panicCache wraps a policy.Cache and panics on Update of one poisoned key.
// The wrapper hides the batch-updater capabilities, so the engine applies
// its batches through the per-op loop — the injection point.
type panicCache struct {
	policy.Cache
	poison uint64
}

func (p *panicCache) Update(k, v uint64, tok policy.Token, now time.Duration) policy.Result {
	if k == p.poison {
		panic("injected writer panic")
	}
	return p.Cache.Update(k, v, tok, now)
}

func TestWriterPanicRecovery(t *testing.T) {
	const poison = uint64(0xdead)
	reg := obs.NewRegistry()
	e, err := New(Config{
		Shards: 2, BatchSize: 4, Block: true, Obs: reg,
		NewCache: func(i int) policy.Cache {
			return &panicCache{Cache: policy.NewP4LRU(3, 64, uint64(i+1), nil), poison: poison}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	// Interleave healthy ops with poisoned ones; every poisoned batch is
	// recovered and the writer keeps going.
	const healthy = 500
	sub := e.NewSubmitter()
	for i := 0; i < healthy; i++ {
		sub.Submit(Op{Key: uint64(i + 1), Value: uint64(i)})
		if i%50 == 0 {
			sub.Submit(Op{Key: poison})
		}
	}
	sub.Flush()
	e.Flush() // must not hang: failed ops count toward the flush target

	var submitted, applied, dropped, failed, panics uint64
	for _, st := range e.Stats() {
		submitted += st.Submitted
		applied += st.Applied
		dropped += st.Dropped
		failed += st.Failed
		panics += st.Panics
	}
	if panics == 0 {
		t.Fatal("no writer panics recovered — injection did not fire")
	}
	if submitted != applied+failed {
		t.Fatalf("accounting: submitted=%d applied=%d failed=%d", submitted, applied, failed)
	}
	if failed > dropped {
		t.Fatalf("failed (%d) must be a subset of dropped (%d)", failed, dropped)
	}
	if got := reg.SumCounters("engine_writer_panics_total"); got != panics {
		t.Fatalf("obs panics counter = %d, Stats say %d", got, panics)
	}

	// The engine still serves: healthy keys are queryable, new submits land.
	if !e.Submit(Op{Key: 999999, Value: 42}) {
		t.Fatal("Submit rejected after recovered panics")
	}
	e.Flush()
	if v, _, ok := e.Query(999999); !ok || v != 42 {
		t.Fatalf("Query(999999) = %d,%v after recovery", v, ok)
	}
}

// blockingCache blocks Update until released — the watchdog's adversary.
type blockingCache struct {
	policy.Cache
	gate <-chan struct{}
	once sync.Once
}

func (b *blockingCache) Update(k, v uint64, tok policy.Token, now time.Duration) policy.Result {
	b.once.Do(func() { <-b.gate })
	return b.Cache.Update(k, v, tok, now)
}

func TestWatchdogFlagsAndClearsStall(t *testing.T) {
	gate := make(chan struct{})
	reg := obs.NewRegistry()
	e, err := New(Config{
		Shards: 1, StallWindow: 40 * time.Millisecond, Obs: reg,
		NewCache: func(int) policy.Cache {
			return &blockingCache{Cache: policy.NewP4LRU(3, 64, 1, nil), gate: gate}
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	if err := e.Healthy(); err != nil {
		t.Fatalf("fresh engine Healthy = %v", err)
	}
	for i := 0; i < 8; i++ {
		e.Submit(Op{Key: uint64(i + 1)})
	}
	deadline := time.Now().Add(2 * time.Second)
	for e.Healthy() == nil {
		if time.Now().After(deadline) {
			t.Fatal("watchdog never flagged the blocked shard")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := e.Healthy(); err == nil {
		t.Fatal("expected a stall error")
	}

	// Release the writer: the stall flag clears on its own.
	close(gate)
	for e.Healthy() != nil {
		if time.Now().After(deadline) {
			t.Fatal("watchdog never cleared the recovered shard")
		}
		time.Sleep(5 * time.Millisecond)
	}
	e.Close()
	if st := e.Stats()[0]; st.Stalled {
		t.Fatal("Stats still reports the shard stalled after recovery")
	}
}

func TestDrainStopsIntakeAndFlushes(t *testing.T) {
	e, err := NewFromSpec(policy.Spec{Kind: policy.KindP4LRU3, MemBytes: 64 << 10, Seed: 7},
		Config{Shards: 4, Block: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	sub := e.NewSubmitter()
	const n = 10_000
	for i := 0; i < n; i++ {
		sub.Submit(Op{Key: uint64(i + 1), Value: uint64(i)})
	}
	sub.Flush()

	if err := e.Drain(context.Background()); err != nil {
		t.Fatalf("Drain = %v", err)
	}
	var submitted, applied uint64
	for _, st := range e.Stats() {
		submitted += st.Submitted
		applied += st.Applied
		if st.QueueLen != 0 {
			t.Fatalf("queue not empty after Drain: %d batches", st.QueueLen)
		}
	}
	if submitted != applied {
		t.Fatalf("Drain returned with submitted=%d applied=%d", submitted, applied)
	}

	// Intake is stopped; the read path keeps serving.
	if e.Submit(Op{Key: 1, Value: 1}) {
		t.Fatal("Submit accepted after Drain")
	}
	found := 0
	e.Range(func(k, v uint64) bool { found++; return true })
	if found == 0 || found != e.Len() {
		t.Fatalf("post-drain Range found %d entries, Len=%d", found, e.Len())
	}
}

func TestDrainHonoursContext(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	e, err := New(Config{
		Shards: 1, StallWindow: -1,
		NewCache: func(int) policy.Cache {
			return &blockingCache{Cache: policy.NewP4LRU(3, 64, 1, nil), gate: gate}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Submit(Op{Key: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := e.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain against a blocked writer = %v, want DeadlineExceeded", err)
	}
}

func TestShedderGatesSubmit(t *testing.T) {
	sh := resilience.NewShedder(resilience.ShedderConfig{TargetLatency: time.Millisecond, Alpha: 1})
	e, err := NewFromSpec(policy.Spec{Kind: policy.KindP4LRU3, MemBytes: 16 << 10, Seed: 3},
		Config{Shards: 2, Shedder: sh})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	if !e.Submit(Op{Key: 1, Value: 1}) {
		t.Fatal("idle shedder rejected a submit")
	}
	// Saturate the latency EWMA: pressure 1, everything sheds.
	sh.Observe(10 * time.Millisecond)
	if e.Submit(Op{Key: 2, Value: 2}) {
		t.Fatal("saturated shedder admitted a normal-priority submit")
	}
	if e.SubmitPriority(Op{Key: 3, Value: 3}, resilience.PriHigh) {
		t.Fatal("saturated shedder admitted even high-priority work")
	}
	st := sh.Stats()
	if st.Shed[resilience.PriNormal] != 1 || st.Shed[resilience.PriHigh] != 1 {
		t.Fatalf("per-priority shed accounting = %+v", st.Shed)
	}
	if e.Dropped() != 2 {
		t.Fatalf("engine drop accounting = %d, want 2", e.Dropped())
	}
	// Recovery: pressure falls, admission resumes.
	sh.Observe(0)
	e.Flush()
	if !e.Submit(Op{Key: 4, Value: 4}) {
		t.Fatal("recovered shedder still rejecting")
	}
	e.Flush()
	if submitted, applied := e.Stats()[0].Submitted+e.Stats()[1].Submitted,
		e.Stats()[0].Applied+e.Stats()[1].Applied; submitted != applied {
		t.Fatalf("accounting after shedding: submitted=%d applied=%d", submitted, applied)
	}
}

func TestSnapshotRejectsGarbage(t *testing.T) {
	e, err := NewFromSpec(policy.Spec{Kind: policy.KindP4LRU3, MemBytes: 16 << 10, Seed: 3},
		Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, err := e.RestoreSnapshot(bytes.NewReader([]byte("not a snapshot at all"))); err == nil {
		t.Fatal("RestoreSnapshot accepted garbage")
	}
	var buf bytes.Buffer
	if err := e.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	// Truncate mid-stream: must error, not hang or succeed.
	trunc := buf.Bytes()[:buf.Len()-10]
	if _, err := e.RestoreSnapshot(bytes.NewReader(trunc)); err == nil {
		t.Fatal("RestoreSnapshot accepted a truncated image")
	}
}
