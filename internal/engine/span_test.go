package engine

import (
	"context"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/p4lru/p4lru/internal/backing"
	"github.com/p4lru/p4lru/internal/obs"
	"github.com/p4lru/p4lru/internal/obs/span"
	"github.com/p4lru/p4lru/internal/policy"
	"github.com/p4lru/p4lru/internal/resilience"
)

// newTestTracer returns an enabled tracer that captures every op (SampleN=1)
// so tests can assert on ring contents deterministically.
func newTestTracer(reg *obs.Registry) *span.Tracer {
	tr := span.New(span.Config{Shards: 4, SampleN: 1, RingSize: 256, RecalcEvery: 1 << 20, Obs: reg})
	tr.SetEnabled(true)
	return tr
}

// TestTracedHitPathZeroAlloc is the acceptance gate: with tracing enabled
// AND sampling active (every hit captured into the ring, exemplars
// attached), the Tiered hit path still performs zero allocations per op.
func TestTracedHitPathZeroAlloc(t *testing.T) {
	reg := obs.NewRegistry()
	tr := newTestTracer(reg)
	e := newTestEngine(t, Config{Shards: 2, Block: true, Span: tr})
	store := backing.NewMapStore().Preload(100)
	tiered := NewTiered(e, store, backing.LoaderConfig{})

	ctx := context.Background()
	// Warm: load key 1 through the miss path, then drain so it is resident.
	if _, _, _, err := tiered.GetOrLoad(ctx, 1); err != nil {
		t.Fatal(err)
	}
	e.Flush()
	if _, _, hit, _ := tiered.GetOrLoad(ctx, 1); !hit {
		t.Fatal("warm key did not hit")
	}

	allocs := testing.AllocsPerRun(1000, func() {
		if _, _, hit, _ := tiered.GetOrLoad(ctx, 1); !hit {
			t.Fatal("lost the warm key mid-run")
		}
	})
	if allocs != 0 {
		t.Fatalf("traced hit path allocated %v times/op, want 0", allocs)
	}
	if rec, cap := tr.Stats(); rec == 0 || cap == 0 {
		t.Fatalf("tracing was not actually active: recorded=%d captured=%d", rec, cap)
	}
}

// TestTracedMissWaterfall is the other acceptance gate: a miss against a
// faulty backing store produces a waterfall whose stage sum matches the
// end-to-end latency within clock skew, with the retry visible.
func TestTracedMissWaterfall(t *testing.T) {
	reg := obs.NewRegistry()
	tr := newTestTracer(reg)
	e := newTestEngine(t, Config{Shards: 2, Block: true, Span: tr})
	// latency=1ms, err≈30%: misses spend visible fetch time and often retry.
	// The generous attempt budget makes a full-budget failure (~0.3^8)
	// vanishingly unlikely, but a failed key is tolerated — it simply
	// produces a KindMissFail record instead.
	faulty := backing.NewFaulty(backing.NewMapStore().Preload(1000),
		backing.FaultyConfig{Latency: time.Millisecond, ErrRate: 0.3, Seed: 7})
	tiered := NewTiered(e, faulty, backing.LoaderConfig{Attempts: 8, Backoff: 100 * time.Microsecond})

	ctx := context.Background()
	for k := uint64(1); k <= 20; k++ {
		_, _, _, _ = tiered.GetOrLoad(ctx, k)
	}

	var misses, retried int
	for _, rec := range tr.Snapshot() {
		if rec.Kind != span.KindMiss {
			continue
		}
		misses++
		if rec.Flags&span.FlagRetried != 0 {
			retried++
			if rec.Attempts < 2 {
				t.Fatalf("retried miss with %d attempts: %+v", rec.Attempts, rec)
			}
		}
		if rec.Stages[span.StageFetch] < int64(500*time.Microsecond) {
			t.Fatalf("miss fetch stage %v, want ≥ the injected 1ms-ish latency: %+v",
				time.Duration(rec.Stages[span.StageFetch]), rec)
		}
		// The waterfall invariant: Σ stages == total within clock skew.
		// Marks bracket every interval, so the only slack is the few
		// instructions between the last Mark and Finish.
		diff := rec.Total - rec.StageSum()
		if diff < 0 || diff > int64(time.Millisecond) {
			t.Fatalf("stage sum %v vs total %v (diff %v): %+v",
				time.Duration(rec.StageSum()), time.Duration(rec.Total), time.Duration(diff), rec)
		}
	}
	if misses == 0 {
		t.Fatal("no KindMiss records captured")
	}
	if retried == 0 {
		t.Fatal("err=0.5 over 20 misses produced no retried record")
	}
}

// TestBatchSpansDecomposeQueueWait verifies the shard writers emit KindBatch
// records splitting queue wait from apply time.
func TestBatchSpansDecomposeQueueWait(t *testing.T) {
	reg := obs.NewRegistry()
	tr := newTestTracer(reg)
	e := newTestEngine(t, Config{Shards: 2, BatchSize: 8, Block: true, Span: tr})
	sub := e.NewSubmitter()
	for k := uint64(0); k < 256; k++ {
		sub.Submit(Op{Key: k, Value: k})
	}
	sub.Flush()
	e.Flush()

	var batches int
	for _, rec := range tr.Snapshot() {
		if rec.Kind != span.KindBatch {
			continue
		}
		batches++
		if rec.Batch == 0 {
			t.Fatalf("batch record without batch size: %+v", rec)
		}
		if rec.Stages[span.StageApply] <= 0 {
			t.Fatalf("batch record without apply time: %+v", rec)
		}
	}
	if batches == 0 {
		t.Fatal("no KindBatch records captured")
	}
	snap := reg.Snapshot()
	if h := snap.Histograms[`span_stage_seconds{stage="queue_wait"}`]; h.Count == 0 {
		t.Fatal("queue_wait histogram empty")
	}
}

// TestShedDecisionSpans verifies shedder rejections surface as KindShed.
func TestShedDecisionSpans(t *testing.T) {
	reg := obs.NewRegistry()
	tr := newTestTracer(reg)
	// MaxShed at PriNormal's band with an impossible latency target: the
	// shedder sheds everything once pressure is observed.
	sh := resilience.NewShedder(resilience.ShedderConfig{TargetLatency: time.Nanosecond})
	for i := 0; i < 100; i++ {
		sh.Observe(time.Second) // drive the EWMA far past target
	}
	e := newTestEngine(t, Config{Shards: 2, Block: true, Span: tr, Shedder: sh})

	var shed int
	for k := uint64(0); k < 64; k++ {
		if !e.Submit(Op{Key: k, Value: k}) {
			shed++
		}
	}
	if shed == 0 {
		t.Skip("shedder admitted everything; nothing to assert")
	}
	var shedRecs int
	for _, rec := range tr.Snapshot() {
		if rec.Kind == span.KindShed {
			shedRecs++
			if rec.Flags&span.FlagShed == 0 {
				t.Fatalf("shed record without FlagShed: %+v", rec)
			}
		}
	}
	if shedRecs == 0 {
		t.Fatalf("%d submissions shed but no KindShed records", shed)
	}
}

// TestScrapeDuringUpdateBatch is the scrape-during-write hammer: concurrent
// Prometheus and JSON scrapes plus /debug/ops dumps race against full
// UpdateBatch load through the engine. Run under -race this proves the obs
// handlers and the span rings are data-race free against live writers.
func TestScrapeDuringUpdateBatch(t *testing.T) {
	reg := obs.NewRegistry()
	tr := span.New(span.Config{Shards: 4, SampleN: 64, RecalcEvery: 256, Obs: reg})
	tr.SetEnabled(true)
	e := newTestEngine(t, Config{Shards: 4, BatchSize: 16, Block: true, Obs: reg, Span: tr})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sub := e.NewSubmitter()
			defer sub.Flush()
			k := uint64(w) << 32
			for {
				select {
				case <-stop:
					return
				default:
				}
				k++
				sub.Submit(Op{Key: k, Value: k, Token: policy.NoToken})
			}
		}(w)
	}

	obsHandler := reg.Handler()
	opsHandler := tr.Handler()
	for i := 0; i < 50; i++ {
		for _, path := range []string{"/metrics", "/metrics.json"} {
			rr := httptest.NewRecorder()
			obsHandler.ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
			if rr.Code != 200 {
				t.Fatalf("%s -> %d", path, rr.Code)
			}
			if rr.Body.Len() == 0 {
				t.Fatalf("%s returned empty body", path)
			}
		}
		rr := httptest.NewRecorder()
		opsHandler.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/ops", nil))
		if rr.Code != 200 {
			t.Fatalf("/debug/ops -> %d", rr.Code)
		}
	}
	close(stop)
	wg.Wait()
}
