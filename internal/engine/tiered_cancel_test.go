package engine

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/p4lru/p4lru/internal/backing"
	"github.com/p4lru/p4lru/internal/obs"
	"github.com/p4lru/p4lru/internal/policy"
)

// TestGetOrLoadContextCancellation covers a caller abandoning a miss while
// the singleflight fetch is still in flight: the cancelled waiters unblock
// with ctx.Err immediately, the leader completes on its own schedule, no
// goroutine leaks, and the loader accounting balances
// (loads == fetch outcomes + coalesced waits).
func TestGetOrLoadContextCancellation(t *testing.T) {
	release := make(chan struct{})
	store := backing.FuncStore{GetFn: func(ctx context.Context, key uint64) (uint64, error) {
		select {
		case <-release:
			return key ^ backing.SynthSalt, nil
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	}}
	reg := obs.NewRegistry()
	e, err := NewFromSpec(policy.Spec{Kind: policy.KindP4LRU3, MemBytes: 16 << 10, Seed: 9},
		Config{Shards: 2, Block: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	tiered := NewTiered(e, store, backing.LoaderConfig{
		Attempts: 1, Timeout: time.Minute, Obs: reg,
	})

	const key = uint64(42)
	const waiters = 8

	// Baseline after the engine's writers and watchdog are up: anything
	// above it at the end leaked from the cancellation path.
	before := runtime.NumGoroutine()

	// Leader: uncancelled, will win the singleflight and block on the store.
	leaderErr := make(chan error, 1)
	leaderVal := make(chan uint64, 1)
	go func() {
		v, _, hit, err := tiered.GetOrLoad(context.Background(), key)
		if hit {
			err = errors.New("leader saw a hit for an absent key")
		}
		leaderVal <- v
		leaderErr <- err
	}()

	// Give the leader time to register the in-flight call, then pile on
	// cancellable waiters that coalesce onto it.
	time.Sleep(20 * time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	waiterErrs := make(chan error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, _, err := tiered.GetOrLoad(ctx, key)
			waiterErrs <- err
		}()
	}
	time.Sleep(20 * time.Millisecond)

	// Cancel the waiters: they must unblock promptly even though the
	// leader's fetch is still pending.
	cancel()
	unblocked := make(chan struct{})
	go func() { wg.Wait(); close(unblocked) }()
	select {
	case <-unblocked:
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled waiters did not unblock while the fetch was in flight")
	}
	close(waiterErrs)
	for err := range waiterErrs {
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("waiter error = %v, want context.Canceled", err)
		}
	}

	// The leader is unaffected: release the store and it completes.
	close(release)
	if err := <-leaderErr; err != nil {
		t.Fatalf("leader error = %v", err)
	}
	if v := <-leaderVal; v != key^backing.SynthSalt {
		t.Fatalf("leader value = %d", v)
	}

	// Accounting balances: every Get either led a fetch or coalesced.
	loads := reg.CounterValue("backing_loads_total")
	fetches := reg.CounterValue("backing_fetches_total")
	coalesced := reg.CounterValue("backing_coalesced_total")
	if loads != 1+waiters {
		t.Fatalf("loads = %d, want %d", loads, 1+waiters)
	}
	if fetches != 1 {
		t.Fatalf("fetches = %d, want 1 (waiters must coalesce, not fetch)", fetches)
	}
	if coalesced != waiters {
		t.Fatalf("coalesced = %d, want %d", coalesced, waiters)
	}
	if errs := reg.CounterValue("backing_errors_total"); errs != 0 {
		t.Fatalf("errors = %d, want 0 (cancelled waiters are not fetch errors)", errs)
	}
	if inflight := tiered.Loader().Inflight(); inflight != 0 {
		t.Fatalf("inflight = %d after completion", inflight)
	}

	// No goroutine leak: everything spawned here has exited.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: before=%d now=%d — leak", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The fill hook installed the leader's value: the next GetOrLoad hits.
	e.Flush()
	if _, _, hit, err := tiered.GetOrLoad(context.Background(), key); !hit || err != nil {
		t.Fatalf("post-fill GetOrLoad = (hit=%v, err=%v), want a hit", hit, err)
	}
}
