package engine

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/p4lru/p4lru/internal/obs"
	"github.com/p4lru/p4lru/internal/policy"
)

func newTestEngine(t testing.TB, cfg Config) *Engine {
	t.Helper()
	if cfg.NewCache == nil {
		cfg.NewCache = func(i int) policy.Cache {
			return policy.MustFromSpec(policy.Spec{
				Kind: policy.KindP4LRU3, MemBytes: 64 * 1024, Seed: uint64(i) + 1,
			})
		}
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

func TestShardRoutingDeterministic(t *testing.T) {
	a := newTestEngine(t, Config{Shards: 8, Seed: 42})
	b := newTestEngine(t, Config{Shards: 8, Seed: 42})
	other := newTestEngine(t, Config{Shards: 8, Seed: 43})
	differs := false
	for k := uint64(0); k < 10_000; k++ {
		sa, sb := a.ShardFor(k), b.ShardFor(k)
		if sa != sb {
			t.Fatalf("key %d: shard %d vs %d across identically-seeded engines", k, sa, sb)
		}
		if sa < 0 || sa >= 8 {
			t.Fatalf("key %d: shard %d out of range", k, sa)
		}
		if other.ShardFor(k) != sa {
			differs = true
		}
	}
	if !differs {
		t.Error("routing identical under a different seed — seed is ignored")
	}
}

func TestShardRoutingCoversAllShards(t *testing.T) {
	e := newTestEngine(t, Config{Shards: 8, Seed: 1})
	var counts [8]int
	for k := uint64(0); k < 8000; k++ {
		counts[e.ShardFor(k)]++
	}
	for i, c := range counts {
		// Uniform would be 1000; require at least a quarter of that.
		if c < 250 {
			t.Errorf("shard %d got %d/8000 keys — routing badly skewed", i, c)
		}
	}
}

func TestSubmitQueryEndToEnd(t *testing.T) {
	e := newTestEngine(t, Config{Shards: 4, Seed: 1, Block: true})
	const n = 20_000
	sub := e.NewSubmitter()
	for k := uint64(1); k <= n; k++ {
		sub.Submit(Op{Key: k, Value: k * 3})
	}
	sub.Flush()
	e.Flush()

	// The most recently inserted keys must be resident with their values.
	miss := 0
	for k := uint64(n - 100); k <= n; k++ {
		v, _, ok := e.Query(k)
		if !ok {
			miss++
			continue
		}
		if v != k*3 {
			t.Fatalf("key %d: value %d, want %d", k, v, k*3)
		}
	}
	if miss > 30 {
		t.Errorf("%d/101 recent keys missing — far beyond unit-collision losses", miss)
	}
	if e.Len() == 0 || e.Len() > e.Capacity() {
		t.Errorf("Len() = %d, Capacity() = %d", e.Len(), e.Capacity())
	}

	// All ops accounted: submitted == applied, nothing dropped.
	var submitted, applied uint64
	for _, s := range e.Stats() {
		submitted += s.Submitted
		applied += s.Applied
	}
	if submitted != n || applied != n {
		t.Errorf("accounting: submitted=%d applied=%d, want %d", submitted, applied, n)
	}
	if d := e.Dropped(); d != 0 {
		t.Errorf("%d drops in block mode", d)
	}
}

func TestApplyIsSynchronous(t *testing.T) {
	e := newTestEngine(t, Config{Shards: 4, Seed: 1})
	res := e.Apply(Op{Key: 7, Value: 99})
	if !res.Admitted {
		t.Errorf("first Apply: %+v, want admission", res)
	}
	if v, _, ok := e.Query(7); !ok || v != 99 {
		t.Fatalf("Query(7) = %d,%v immediately after Apply", v, ok)
	}
}

// slowCache delays every Update so queue backpressure is reachable and one
// shard's writer can be pinned mid-batch.
type slowCache struct {
	policy.Cache
	delay   time.Duration
	updates atomic.Int64
}

func (s *slowCache) Update(k, v uint64, tok policy.Token, now time.Duration) policy.Result {
	if s.delay > 0 {
		time.Sleep(s.delay)
	}
	s.updates.Add(1)
	return s.Cache.Update(k, v, tok, now)
}

func TestBackpressureDropAccounting(t *testing.T) {
	slow := make([]*slowCache, 2)
	e := newTestEngine(t, Config{
		Shards: 2, Seed: 1, QueueDepth: 2, BatchSize: 4, Block: false,
		NewCache: func(i int) policy.Cache {
			slow[i] = &slowCache{
				Cache: policy.MustFromSpec(policy.Spec{Kind: policy.KindP4LRU3, MemBytes: 16 * 1024, Seed: uint64(i)}),
				delay: 2 * time.Millisecond,
			}
			return slow[i]
		},
	})

	const n = 4000
	sub := e.NewSubmitter()
	for k := uint64(0); k < n; k++ {
		sub.Submit(Op{Key: k, Value: k})
	}
	sub.Flush()

	if sub.Dropped() == 0 {
		t.Fatal("no drops despite 2-deep queues over a 2ms/op cache")
	}
	e.Flush()
	var applied, dropped uint64
	for _, s := range e.Stats() {
		applied += s.Applied
		dropped += s.Dropped
	}
	if dropped != sub.Dropped() {
		t.Errorf("engine counted %d drops, submitter %d", dropped, sub.Dropped())
	}
	if applied+dropped != n {
		t.Errorf("applied %d + dropped %d != submitted %d", applied, dropped, n)
	}
	if got := slow[0].updates.Load() + slow[1].updates.Load(); uint64(got) != applied {
		t.Errorf("caches saw %d updates, engine applied %d", got, applied)
	}
}

func TestSlowShardDoesNotBlockOtherShardQueries(t *testing.T) {
	var caches []*slowCache
	var mu sync.Mutex
	e := newTestEngine(t, Config{
		Shards: 4, Seed: 1, Block: true, BatchSize: 1,
		NewCache: func(i int) policy.Cache {
			c := &slowCache{
				Cache: policy.MustFromSpec(policy.Spec{Kind: policy.KindP4LRU3, MemBytes: 16 * 1024, Seed: uint64(i)}),
				delay: 50 * time.Millisecond,
			}
			mu.Lock()
			caches = append(caches, c)
			mu.Unlock()
			return c
		},
	})

	// Pin shard s0 in a slow Update, then query keys on other shards: they
	// must complete while the victim shard is still busy.
	victim := e.ShardFor(1)
	e.Submit(Op{Key: 1, Value: 1})
	time.Sleep(5 * time.Millisecond) // let the writer enter the slow Update

	done := make(chan struct{})
	go func() {
		defer close(done)
		for k := uint64(2); k < 2000; k++ {
			if e.ShardFor(k) != victim {
				e.Query(k)
			}
		}
	}()
	select {
	case <-done:
		// Other shards made progress while the victim writer slept — the
		// global-mutex behaviour would have serialized them behind it.
	case <-time.After(45 * time.Millisecond):
		t.Fatal("cross-shard queries stalled behind one slow shard")
	}
	e.Flush()
}

func TestRaceHammer(t *testing.T) {
	// Submit/Apply/Query/Range/Len from GOMAXPROCS goroutines; run with
	// -race this is the engine's memory-safety proof.
	e := newTestEngine(t, Config{Shards: 4, Seed: 3, Block: true})
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sub := e.NewSubmitter()
			for i := 0; i < perWorker; i++ {
				k := uint64(w*perWorker + i)
				switch i % 5 {
				case 0, 1:
					sub.Submit(Op{Key: k, Value: k})
				case 2:
					e.Query(k)
				case 3:
					e.Apply(Op{Key: k, Value: k ^ 0xff})
				case 4:
					if i%500 == 4 {
						n := 0
						e.Range(func(_, _ uint64) bool { n++; return n < 64 })
						_ = e.Len()
					} else {
						e.Query(k / 2)
					}
				}
			}
			sub.Flush()
		}(w)
	}
	wg.Wait()
	e.Flush()
	var applied, submitted uint64
	for _, s := range e.Stats() {
		applied += s.Applied
		submitted += s.Submitted
	}
	if applied != submitted {
		t.Errorf("after Flush: applied=%d submitted=%d", applied, submitted)
	}
}

func TestCloseDrainsAndRejects(t *testing.T) {
	e, err := New(Config{Shards: 2, Seed: 1, Block: true,
		NewCache: func(i int) policy.Cache {
			return policy.MustFromSpec(policy.Spec{Kind: policy.KindP4LRU3, MemBytes: 16 * 1024, Seed: uint64(i)})
		}})
	if err != nil {
		t.Fatal(err)
	}
	sub := e.NewSubmitter()
	const n = 1000
	for k := uint64(0); k < n; k++ {
		sub.Submit(Op{Key: k, Value: k})
	}
	sub.Flush()
	e.Close()
	e.Close() // idempotent

	var applied uint64
	for _, s := range e.Stats() {
		applied += s.Applied
	}
	if applied != n {
		t.Errorf("Close lost ops: applied %d/%d", applied, n)
	}
	if e.Submit(Op{Key: 1, Value: 1}) {
		t.Error("Submit accepted after Close")
	}
}

func TestNewFromSpecSplitsMemory(t *testing.T) {
	spec := policy.Spec{Kind: policy.KindP4LRU3, MemBytes: 400 * 1024, Seed: 5}
	e, err := NewFromSpec(spec, Config{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	single := policy.MustFromSpec(spec)
	// Eight shards of mem/8 ≈ one cache of mem (rounding loses <8 units).
	if got, want := e.Capacity(), single.Capacity(); got > want || got < want*9/10 {
		t.Errorf("sharded capacity %d vs unsharded %d", got, want)
	}
	if _, err := NewFromSpec(policy.Spec{Kind: "bogus"}, Config{}); err == nil {
		t.Error("bad spec accepted")
	}
}

func TestObsInstrumentation(t *testing.T) {
	reg := obs.NewRegistry()
	e := newTestEngine(t, Config{Shards: 2, Seed: 1, Block: true, Obs: reg})
	sub := e.NewSubmitter()
	for k := uint64(0); k < 500; k++ {
		sub.Submit(Op{Key: k, Value: k})
	}
	sub.Flush()
	e.Flush()
	for k := uint64(0); k < 100; k++ {
		e.Query(k)
	}
	if got := reg.CounterValue("engine_queries_total"); got != 100 {
		t.Errorf("engine_queries_total = %d, want 100", got)
	}
	perShard := reg.SumCounters("engine_ops_total")
	if perShard != 500 {
		t.Errorf("sum engine_ops_total{shard=*} = %d, want 500", perShard)
	}
	snap := reg.Snapshot()
	foundOcc, foundDepth := false, false
	for name := range snap.Gauges {
		switch {
		case name == `engine_occupancy{shard="0"}`:
			foundOcc = true
		case name == `engine_queue_depth{shard="1"}`:
			foundDepth = true
		}
	}
	if !foundOcc || !foundDepth {
		t.Errorf("per-shard gauges missing from snapshot (occ=%v depth=%v)", foundOcc, foundDepth)
	}
}

// lockFreeCache advertises concurrent-read safety (it wraps reads in its own
// mutex so the race detector stays quiet) to exercise the lock-free path.
type lockFreeCache struct {
	mu sync.Mutex
	policy.Cache
}

func (c *lockFreeCache) ConcurrentQuery() bool { return true }
func (c *lockFreeCache) Query(k uint64) (uint64, policy.Token, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.Cache.Query(k)
}
func (c *lockFreeCache) Update(k, v uint64, tok policy.Token, now time.Duration) policy.Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.Cache.Update(k, v, tok, now)
}

func TestConcurrentReaderSkipsLock(t *testing.T) {
	e := newTestEngine(t, Config{
		Shards: 2, Seed: 1, Block: true,
		NewCache: func(i int) policy.Cache {
			return &lockFreeCache{Cache: policy.MustFromSpec(policy.Spec{Kind: policy.KindP4LRU3, MemBytes: 16 * 1024, Seed: uint64(i)})}
		},
	})
	// A cache that already reports ConcurrentQuery must be installed as-is
	// (no Synchronized wrapping): the shard queries it directly.
	if _, ok := e.shards[0].cache.(*lockFreeCache); !ok {
		t.Fatalf("ConcurrentReader cache was wrapped: shard holds %T", e.shards[0].cache)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := uint64(w*2000 + i)
				e.Submit(Op{Key: k, Value: k})
				e.Query(k)
			}
		}(w)
	}
	wg.Wait()
	e.Flush()
}

// TestNonConcurrentCacheGetsSynchronized pins the other half of the
// lock-free query contract: a policy without ConcurrentQuery is wrapped in
// policy.Synchronized at construction (so the engine can query it with no
// lock of its own), and the wrapper preserves the cache's batch
// capabilities for the shard writer.
func TestNonConcurrentCacheGetsSynchronized(t *testing.T) {
	e := newTestEngine(t, Config{
		Shards: 1, Seed: 1, Block: true,
		NewCache: func(i int) policy.Cache {
			return policy.NewP4LRU(3, 256, uint64(i), nil) // generic core: no ConcurrentQuery
		},
	})
	s := e.shards[0]
	if _, ok := s.cache.(*policy.Synchronized); !ok {
		t.Fatalf("non-concurrent cache not wrapped: shard holds %T", s.cache)
	}
	if s.batch == nil || s.evictBatch == nil {
		t.Fatal("Synchronized wrapper does not forward batch capabilities")
	}
	for i := uint64(0); i < 1000; i++ {
		e.Submit(Op{Key: i, Value: i})
	}
	e.Flush()
	if _, _, ok := e.Query(999); !ok {
		t.Fatal("wrapped cache lost writes")
	}
}

// TestApplyBatchIsSynchronousAcrossShards checks the batched synchronous
// entry point: every op lands on its home shard immediately (the reply path
// must observe its own writes before forwarding), the per-shard op counters
// advance, and results match the per-op Apply path on a twin engine.
func TestApplyBatchIsSynchronousAcrossShards(t *testing.T) {
	batched := newTestEngine(t, Config{Shards: 8, Seed: 21})
	perOp := newTestEngine(t, Config{Shards: 8, Seed: 21})

	const n = 3 * applyChunkMax // force multiple chunks
	ops := make([]Op, n)
	for i := range ops {
		k := uint64(i + 1)
		ops[i] = Op{Key: k, Value: k * 7}
	}
	batched.ApplyBatch(ops)
	for _, op := range ops {
		perOp.Apply(op)
	}

	for k := uint64(1); k <= n; k++ {
		bv, _, bok := batched.Query(k)
		pv, _, pok := perOp.Query(k)
		if bok != pok || bv != pv {
			t.Fatalf("key %d: ApplyBatch gave %d,%v; Apply gave %d,%v", k, bv, bok, pv, pok)
		}
	}
	if batched.Len() != perOp.Len() {
		t.Fatalf("occupancy diverged: batched %d vs per-op %d", batched.Len(), perOp.Len())
	}
}

// TestApplyBatchSingleShardAndEmpty covers the degenerate shapes: an empty
// slice is a no-op and a one-shard engine takes the direct path.
func TestApplyBatchSingleShardAndEmpty(t *testing.T) {
	e := newTestEngine(t, Config{Shards: 1, Seed: 3})
	e.ApplyBatch(nil)
	e.ApplyBatch([]Op{})
	ops := []Op{{Key: 1, Value: 10}, {Key: 2, Value: 20}, {Key: 3, Value: 30}}
	e.ApplyBatch(ops)
	for _, op := range ops {
		if v, _, ok := e.Query(op.Key); !ok || v != op.Value {
			t.Fatalf("Query(%d) = %d,%v after ApplyBatch", op.Key, v, ok)
		}
	}
}

// TestApplyBatchOnEvict checks the eviction hook still fires through the
// batched synchronous path once a shard overflows.
func TestApplyBatchOnEvict(t *testing.T) {
	var evicted atomic.Int64
	e := newTestEngine(t, Config{
		Shards: 2, Seed: 5,
		OnEvict: func(k, v uint64) { evicted.Add(1) },
		NewCache: func(i int) policy.Cache {
			return policy.MustFromSpec(policy.Spec{
				Kind: policy.KindP4LRU3, MemBytes: 2 * 1024, Seed: uint64(i) + 1,
			})
		},
	})
	ops := make([]Op, 4096)
	for i := range ops {
		ops[i] = Op{Key: uint64(i + 1), Value: uint64(i)}
	}
	e.ApplyBatch(ops)
	if evicted.Load() == 0 {
		t.Fatal("no evictions surfaced through ApplyBatch on an overflowing cache")
	}
}

// BenchmarkApplyBatch measures the synchronous batched apply the network
// reply path sits on; the bench harness gates it zero-alloc.
func BenchmarkApplyBatch(b *testing.B) {
	e := newTestEngine(b, Config{Shards: 4, Seed: 1})
	const batch = 64
	ops := make([]Op, batch)
	for i := range ops {
		ops[i] = Op{Key: uint64(i + 1), Value: uint64(i)}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += batch {
		e.ApplyBatch(ops)
	}
}
