package engine

import (
	"bytes"
	"context"
	"testing"

	"github.com/p4lru/p4lru/internal/policy"
)

// snapshotRoundTrip fills an engine from a spec, snapshots it, restores into
// a fresh engine of the same geometry, and verifies identical Len and
// identical Query results for every resident key.
func snapshotRoundTrip(t *testing.T, spec policy.Spec) {
	t.Helper()
	cfg := Config{Shards: 4, Block: true}
	src, err := NewFromSpec(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	sub := src.NewSubmitter()
	for i := 0; i < 50_000; i++ {
		sub.Submit(Op{Key: uint64(i*2547 + 1), Value: uint64(i)})
	}
	sub.Flush()
	if err := src.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if src.Len() == 0 {
		t.Fatal("source engine is empty — nothing to round-trip")
	}

	var buf bytes.Buffer
	if err := src.Snapshot(&buf); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}

	dst, err := NewFromSpec(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	restored, err := dst.RestoreSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("RestoreSnapshot: %v", err)
	}
	if restored != src.Len() {
		t.Fatalf("restored %d pairs, source holds %d", restored, src.Len())
	}
	if dst.Len() != src.Len() {
		t.Fatalf("Len after restore = %d, want %d", dst.Len(), src.Len())
	}

	// Every resident key answers identically.
	mismatches := 0
	src.Range(func(k, v uint64) bool {
		got, _, ok := dst.Query(k)
		if !ok || got != v {
			mismatches++
			if mismatches <= 5 {
				t.Errorf("Query(%d) after restore = (%d, %v), want (%d, true)", k, got, ok, v)
			}
		}
		return true
	})
	if mismatches > 0 {
		t.Fatalf("%d keys answer differently after restore", mismatches)
	}

	// The restored engine is live: it accepts new work.
	if !dst.Submit(Op{Key: 1 << 60, Value: 9}) {
		t.Fatal("restored engine rejected a submit")
	}
	dst.Flush()
}

func TestSnapshotRoundTripFlatP4LRU3(t *testing.T) {
	snapshotRoundTrip(t, policy.Spec{Kind: policy.KindP4LRU3, MemBytes: 256 << 10, Seed: 11})
}

func TestSnapshotRoundTripGenericP4LRU4(t *testing.T) {
	snapshotRoundTrip(t, policy.Spec{Kind: policy.KindP4LRU4, MemBytes: 256 << 10, Seed: 11})
}

func TestSnapshotRoundTripGenericP4LRU2(t *testing.T) {
	snapshotRoundTrip(t, policy.Spec{Kind: policy.KindP4LRU2, MemBytes: 64 << 10, Seed: 5})
}

func TestSnapshotEmptyEngine(t *testing.T) {
	spec := policy.Spec{Kind: policy.KindP4LRU3, MemBytes: 16 << 10, Seed: 1}
	src, err := NewFromSpec(spec, Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	var buf bytes.Buffer
	if err := src.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	dst, err := NewFromSpec(spec, Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	if n, err := dst.RestoreSnapshot(bytes.NewReader(buf.Bytes())); err != nil || n != 0 {
		t.Fatalf("empty round-trip = (%d, %v), want (0, nil)", n, err)
	}
	if dst.Len() != 0 {
		t.Fatalf("Len after empty restore = %d", dst.Len())
	}
}
