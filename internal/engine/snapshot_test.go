package engine

import (
	"bytes"
	"context"
	"testing"

	"github.com/p4lru/p4lru/internal/policy"
)

// snapshotRoundTrip fills an engine from a spec, snapshots it, restores into
// a fresh engine of the same geometry, and verifies identical Len and
// identical Query results for every resident key.
func snapshotRoundTrip(t *testing.T, spec policy.Spec) {
	t.Helper()
	snapshotRoundTripTol(t, spec, 0)
}

// snapshotRoundTripTol is snapshotRoundTrip with an allowed loss fraction.
// Multi-level (series) caches restore by re-insertion, and refilling a full
// cache in Range order can cascade demotions differently than the original
// insert history did, evicting a small fraction of pairs — bounded, but not
// zero. Single-level flats restore exactly (pass 0).
func snapshotRoundTripTol(t *testing.T, spec policy.Spec, maxLoss float64) {
	t.Helper()
	cfg := Config{Shards: 4, Block: true}
	src, err := NewFromSpec(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	sub := src.NewSubmitter()
	for i := 0; i < 50_000; i++ {
		sub.Submit(Op{Key: uint64(i*2547 + 1), Value: uint64(i)})
	}
	sub.Flush()
	if err := src.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if src.Len() == 0 {
		t.Fatal("source engine is empty — nothing to round-trip")
	}

	var buf bytes.Buffer
	if err := src.Snapshot(&buf); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}

	dst, err := NewFromSpec(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	restored, err := dst.RestoreSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("RestoreSnapshot: %v", err)
	}
	if restored != src.Len() {
		t.Fatalf("restored %d pairs, source holds %d", restored, src.Len())
	}
	if lost := src.Len() - dst.Len(); float64(lost) > maxLoss*float64(src.Len()) {
		t.Fatalf("Len after restore = %d, want ≥ %d (lost %d, tolerance %.0f%%)",
			dst.Len(), src.Len(), lost, maxLoss*100)
	}

	// Every surviving key answers with the source's value; with zero
	// tolerance that means every source key answers identically.
	want := make(map[uint64]uint64, src.Len())
	src.Range(func(k, v uint64) bool {
		want[k] = v
		return true
	})
	mismatches, missing := 0, 0
	dst.Range(func(k, v uint64) bool {
		if wv, ok := want[k]; !ok || wv != v {
			mismatches++
			if mismatches <= 5 {
				t.Errorf("restored pair (%d, %d) not in source (want %d, %v)", k, v, wv, ok)
			}
		}
		return true
	})
	for k, v := range want {
		if got, _, ok := dst.Query(k); !ok {
			missing++
		} else if got != v {
			mismatches++
			if mismatches <= 5 {
				t.Errorf("Query(%d) after restore = %d, want %d", k, got, v)
			}
		}
	}
	if mismatches > 0 {
		t.Fatalf("%d keys answer differently after restore", mismatches)
	}
	if maxLoss == 0 && missing > 0 {
		t.Fatalf("%d source keys missing after exact restore", missing)
	}

	// The restored engine is live: it accepts new work.
	if !dst.Submit(Op{Key: 1 << 60, Value: 9}) {
		t.Fatal("restored engine rejected a submit")
	}
	dst.Flush()
}

func TestSnapshotRoundTripFlatP4LRU3(t *testing.T) {
	snapshotRoundTrip(t, policy.Spec{Kind: policy.KindP4LRU3, MemBytes: 256 << 10, Seed: 11})
}

func TestSnapshotRoundTripFlatP4LRU4(t *testing.T) {
	snapshotRoundTrip(t, policy.Spec{Kind: policy.KindP4LRU4, MemBytes: 256 << 10, Seed: 11})
}

func TestSnapshotRoundTripFlatP4LRU2(t *testing.T) {
	snapshotRoundTrip(t, policy.Spec{Kind: policy.KindP4LRU2, MemBytes: 64 << 10, Seed: 5})
}

func TestSnapshotRoundTripFlatSeries(t *testing.T) {
	// Unit capacity 3 (the default) routes to the seqlock FlatSeries core.
	snapshotRoundTripTol(t, policy.Spec{Kind: policy.KindSeries, Levels: 4, MemBytes: 256 << 10, Seed: 7}, 0.10)
}

func TestSnapshotRoundTripFlatSeriesUnitCap2(t *testing.T) {
	// Shallow rings re-evict more on refill: only two levels to cascade
	// demotions through before a pair falls off the end.
	snapshotRoundTripTol(t, policy.Spec{Kind: policy.KindSeries, Levels: 2, UnitCap: 2, MemBytes: 128 << 10, Seed: 3}, 0.20)
}

func TestSnapshotRoundTripFlatSeriesUnitCap4(t *testing.T) {
	snapshotRoundTripTol(t, policy.Spec{Kind: policy.KindSeries, Levels: 3, UnitCap: 4, MemBytes: 192 << 10, Seed: 9}, 0.10)
}

// TestRestoreSnapshotIfAbsent verifies the keep-existing restore mode the
// cluster tier uses after a ring swap: resident keys win over the image.
func TestRestoreSnapshotIfAbsent(t *testing.T) {
	spec := policy.Spec{Kind: policy.KindP4LRU3, MemBytes: 256 << 10, Seed: 11}
	cfg := Config{Shards: 4, Block: true}
	src, err := NewFromSpec(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	for i := uint64(1); i <= 1000; i++ {
		src.Apply(Op{Key: i, Value: i * 10})
	}
	var buf bytes.Buffer
	if err := src.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	dst, err := NewFromSpec(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	// Fresher writes land before the stale image arrives.
	for i := uint64(1); i <= 100; i++ {
		dst.Apply(Op{Key: i, Value: i * 1000})
	}
	n, err := dst.RestoreSnapshotIfAbsent(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("RestoreSnapshotIfAbsent: %v", err)
	}
	if n >= 1000 {
		t.Fatalf("installed %d pairs; resident keys should have been skipped", n)
	}
	for i := uint64(1); i <= 100; i++ {
		if v, _, ok := dst.Query(i); !ok || v != i*1000 {
			t.Fatalf("Query(%d) = (%d, %v); keep-existing restore rolled back a fresher write", i, v, ok)
		}
	}
	hits := 0
	for i := uint64(101); i <= 1000; i++ {
		if v, _, ok := dst.Query(i); ok {
			if v != i*10 {
				t.Fatalf("Query(%d) = %d, want %d from the image", i, v, i*10)
			}
			hits++
		}
	}
	if hits == 0 {
		t.Fatal("no image pairs installed for absent keys")
	}
}

func TestSnapshotEmptyEngine(t *testing.T) {
	spec := policy.Spec{Kind: policy.KindP4LRU3, MemBytes: 16 << 10, Seed: 1}
	src, err := NewFromSpec(spec, Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	var buf bytes.Buffer
	if err := src.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	dst, err := NewFromSpec(spec, Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	if n, err := dst.RestoreSnapshot(bytes.NewReader(buf.Bytes())); err != nil || n != 0 {
		t.Fatalf("empty round-trip = (%d, %v), want (0, nil)", n, err)
	}
	if dst.Len() != 0 {
		t.Fatalf("Len after empty restore = %d", dst.Len())
	}
}
