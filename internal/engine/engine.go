// Package engine is the sharded, concurrency-safe serving layer that turns
// any policy.Cache into a multi-core engine.
//
// The paper's parallel connection (§1.2) makes line-rate caching possible by
// giving every flow-key hash bucket an independent P4LRU unit: units never
// interact, so the pipeline can process one packet per clock regardless of
// how many units exist. This package is the software transplant of that
// observation: the key space is split across N shards by the same seeded
// flow-key hash family (internal/hashing), each shard owns a private
// policy.Cache, and cross-shard coordination is never needed because no key
// can live in two shards.
//
// Concurrency model, per shard:
//
//   - One single-writer goroutine applies all replacement-state mutations,
//     fed by a bounded queue of fixed-size op batches (batching amortizes
//     channel overhead; the queue bound gives explicit backpressure). With
//     Block=false a full queue drops the batch and counts it — the
//     data-plane behaviour, where a congested pipe sheds load rather than
//     stall the line. With Block=true Submit blocks — the server behaviour.
//   - Query takes no engine lock on any path. The default flat seqlock
//     caches (policy.ConcurrentReader) are wait-free against the shard
//     writer — readers of different shards never interact, and readers of
//     one shard never serialize against its writer at all. Any other policy
//     is wrapped in policy.Synchronized at construction, whose internal
//     read-write lock carries the same contract.
//   - Apply performs one synchronous mutation under the shard mutator lock,
//     bypassing the queue — for reply paths that must observe their own
//     write (the netproto switch) and for tests.
//
// Resilience (the software analogue of a pipeline that never stalls, §2):
// shard writers are supervised — a panic inside a batch apply is recovered,
// counted, and the writer keeps consuming its queue, so one poisoned op
// cannot deadlock Submit or take the shard dark. A watchdog flags shards
// whose queue holds work the writer hasn't advanced within a stall window.
// An optional resilience.Shedder gates admission by queue fullness and
// latency pressure, shedding lowest-priority work first. Drain stops intake
// and flushes the writers; Snapshot/RestoreSnapshot round-trip the cache
// contents so a restart does not mean a cold cache.
//
// The engine deliberately does not implement policy.Cache: Update's
// synchronous Result has no meaning once mutations are queued. Callers that
// need the Result use Apply.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/p4lru/p4lru/internal/hashing"
	"github.com/p4lru/p4lru/internal/obs"
	"github.com/p4lru/p4lru/internal/obs/span"
	"github.com/p4lru/p4lru/internal/policy"
	"github.com/p4lru/p4lru/internal/resilience"
)

// routeSalt decorrelates the shard-routing hash from the per-shard cache
// index hashes, which are seeded from the same base seed.
const routeSalt = 0x5ead1e55c0ffee

// batchSpanSample traces 1 in this many batches (power of two). A batch
// span costs a few hundred ns (three timestamps plus histogram updates) on
// the shard writer, which is the pipeline bottleneck under sustained write
// load; sampling keeps the traced batch path within the 5% throughput
// budget the bench-smoke gate enforces while queue-wait distributions stay
// statistically representative.
const batchSpanSample = 8

// Op is one queued mutation: the (key, value, token, time) quadruple of
// policy.Cache.Update. It is policy.Op itself, so a queued batch can be
// handed to a policy.BatchUpdater cache without conversion or copying.
type Op = policy.Op

// Config parameterizes New.
type Config struct {
	// Shards is the number of independent cache shards (0 = GOMAXPROCS).
	Shards int
	// QueueDepth bounds each shard's submission queue, measured in batches
	// (0 = 256).
	QueueDepth int
	// BatchSize is the number of ops a Submitter accumulates before handing
	// the batch to the shard (0 = 64). The shard writer also applies a whole
	// batch per lock acquisition, so BatchSize bounds writer lock hold time.
	BatchSize int
	// Seed seeds the shard-routing hash (and, by convention, the per-shard
	// caches built by NewCache).
	Seed uint64
	// NewCache builds the cache owned by shard i. Required. The engine owns
	// the returned caches; nothing else may touch them.
	NewCache func(shard int) policy.Cache
	// Block selects backpressure semantics when a shard queue is full:
	// true blocks the submitter, false drops the batch and counts it.
	Block bool
	// OnEvict, when non-nil, is invoked for every eviction a queued batch
	// or Apply performs — the hook the write-behind drain hangs off. It
	// runs on the shard writer goroutine (or the Apply caller) under the
	// shard write lock, so it must be fast and non-blocking
	// (backing.WriteBehind.Offer qualifies: bounded queue, sheds on
	// overflow). Setting it routes batches through the cache's
	// policy.EvictBatchUpdater when available, else a per-op Update loop —
	// evictions cannot be observed through the eviction-blind batch walk.
	OnEvict func(key, val uint64)
	// Obs, when non-nil, receives per-shard counters and gauges
	// (engine_ops_total, engine_drops_total, engine_occupancy,
	// engine_queue_depth), global query counters and the batch-size
	// histogram. nil costs nothing on the hot path.
	Obs *obs.Registry
	// Shedder, when non-nil, gates admission on the submit path: each batch
	// asks Admit with its priority and the destination shard's queue
	// fraction, and a shed batch is dropped and counted (per-priority in the
	// shedder, per-shard in the engine drop counters). nil admits everything.
	Shedder *resilience.Shedder
	// StallWindow tunes the shard watchdog: a shard whose queue holds work
	// but whose writer has not applied anything for this long is flagged
	// stalled (obs gauge engine_shard_stalled, Stats.Stalled, Healthy).
	// 0 = 2s; negative disables the watchdog.
	StallWindow time.Duration
	// Span, when non-nil and enabled, traces the serving stages: queued
	// batches carry their enqueue timestamp so each writer dequeue emits a
	// KindBatch record decomposing queue wait vs batch apply, shed
	// submissions emit KindShed records, and QuerySpanned attributes read
	// latency. When the tracer is disabled (or nil) the only hot-path cost
	// is one nil check plus one atomic load per batch.
	Span *span.Tracer
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 64
	}
	if c.StallWindow == 0 {
		c.StallWindow = 2 * time.Second
	}
	return c
}

// queued is one batch in flight to a shard writer, stamped with its enqueue
// time (tracer clock; 0 when tracing is off) so the writer can attribute
// queue wait separately from apply time.
type queued struct {
	ops []Op
	enq int64
}

// shard is one independent serving unit: a private cache, the mutator lock
// that serializes its writers, and the bounded batch queue its writer
// goroutine consumes. The query path takes no shard lock: every cache here
// reports policy.ConcurrentQuery — the flat cores via their per-unit
// seqlocks, everything else because New wraps it in policy.Synchronized,
// which read-locks internally.
type shard struct {
	mu         sync.Mutex // serializes mutators (writer goroutine, Apply); queries take no lock
	cache      policy.Cache
	batch      policy.BatchUpdater      // non-nil when cache applies whole batches
	evictBatch policy.EvictBatchUpdater // non-nil when batches can report evictions

	queue     chan queued
	submitted atomic.Uint64 // ops handed to the queue
	applied   atomic.Uint64 // ops the writer has applied
	drops     atomic.Uint64 // ops shed on a full queue, by the shedder, or lost to a panic
	failed    atomic.Uint64 // ops lost to recovered writer panics (subset of drops)
	panics    atomic.Uint64 // writer panics recovered
	stalled   atomic.Bool   // watchdog verdict: queued work, writer not advancing

	ops        *obs.Counter
	dropped    *obs.Counter
	panicCount *obs.Counter
	stallGauge *obs.Gauge
}

// Engine routes every key to its home shard by flow-key hash.
type Engine struct {
	cfg    Config
	route  hashing.Hash
	shards []*shard
	pool   sync.Pool // []Op batch buffers, cap = BatchSize
	// spanTick samples batch spans 1-in-batchSpanSample at enqueue, so the
	// shard writers — the throughput bottleneck under sustained write load —
	// pay the span cost on a fraction of batches instead of all of them.
	spanTick atomic.Uint64

	lifeMu   sync.RWMutex
	closed   bool
	draining atomic.Bool
	wg       sync.WaitGroup

	watchdogStop chan struct{}
	watchdogDone chan struct{}

	queries   *obs.Counter
	hits      *obs.Counter
	batchSize *obs.Histogram
}

// New builds and starts an engine: cfg.Shards caches, one writer goroutine
// each. The engine serves until Close.
func New(cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	if cfg.NewCache == nil {
		return nil, fmt.Errorf("engine: Config.NewCache is required")
	}
	e := &Engine{
		cfg:    cfg,
		route:  hashing.New(cfg.Seed ^ routeSalt),
		shards: make([]*shard, cfg.Shards),
	}
	e.pool.New = func() any { return make([]Op, 0, cfg.BatchSize) }
	if r := cfg.Obs; r != nil {
		e.queries = r.Counter("engine_queries_total")
		e.hits = r.Counter("engine_hits_total")
		e.batchSize = r.Histogram("engine_batch_ops", batchBuckets(cfg.BatchSize))
		r.GaugeFunc("engine_shards", func() float64 { return float64(cfg.Shards) })
	}
	for i := range e.shards {
		c := cfg.NewCache(i)
		if c == nil {
			return nil, fmt.Errorf("engine: NewCache(%d) returned nil", i)
		}
		// Every shard cache must be queryable with no engine-level lock:
		// caches that already report ConcurrentQuery (the flat seqlock
		// cores) pass through Synchronize unchanged, and anything else is
		// wrapped so its own read-write lock carries the contract. Batch
		// capabilities are detected on the wrapped cache — Synchronized
		// forwards them — so the writer's batch path survives wrapping.
		c = policy.Synchronize(c)
		bu, _ := c.(policy.BatchUpdater)
		ebu, _ := c.(policy.EvictBatchUpdater)
		s := &shard{
			cache:      c,
			batch:      bu,
			evictBatch: ebu,
			queue:      make(chan queued, cfg.QueueDepth),
		}
		if r := cfg.Obs; r != nil {
			label := fmt.Sprintf(`{shard="%d"}`, i)
			s.ops = r.Counter("engine_ops_total" + label)
			s.dropped = r.Counter("engine_drops_total" + label)
			s.panicCount = r.Counter("engine_writer_panics_total" + label)
			s.stallGauge = r.Gauge("engine_shard_stalled" + label)
			sh := s
			r.GaugeFunc("engine_occupancy"+label, func() float64 {
				// Len is lock-free for every shard cache (seqlock-consistent
				// on the flat cores, internally read-locked when wrapped), so
				// a metrics scrape never touches the mutator lock.
				return float64(sh.cache.Len())
			})
			r.GaugeFunc("engine_queue_depth"+label, func() float64 {
				return float64(len(sh.queue))
			})
		}
		e.shards[i] = s
		e.wg.Add(1)
		go e.writer(i, s)
	}
	if cfg.StallWindow > 0 {
		e.watchdogStop = make(chan struct{})
		e.watchdogDone = make(chan struct{})
		go e.watchdog(cfg.StallWindow)
	}
	return e, nil
}

// NewFromSpec builds an engine whose shards split a single policy Spec's
// memory budget evenly: an N-shard engine over "p4lru3:mem=1MiB" holds the
// same total memory as the unsharded cache. Shard i's cache is seeded
// spec.Seed+i so shard-internal hash functions stay independent.
func NewFromSpec(spec policy.Spec, cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	if spec.MemBytes == 0 {
		spec.MemBytes = policy.DefaultMemBytes
	}
	perShard := spec.MemBytes / cfg.Shards
	if _, err := policy.NewFromSpec(spec); err != nil {
		return nil, err // validate the spec once, before fan-out
	}
	cfg.Seed = spec.Seed
	cfg.NewCache = func(i int) policy.Cache {
		s := spec
		s.MemBytes = perShard
		s.Seed = spec.Seed + uint64(i)
		return policy.MustFromSpec(s)
	}
	return New(cfg)
}

// batchBuckets is a ×2 ladder up to the configured batch size.
func batchBuckets(max int) []float64 {
	var b []float64
	for v := 1; v < max; v *= 2 {
		b = append(b, float64(v))
	}
	return append(b, float64(max))
}

// writer is a shard's single mutation goroutine: it applies whole batches
// under one write-lock acquisition and recycles their buffers. It is
// supervised: a panic inside one batch apply is recovered and accounted, and
// the loop keeps consuming — equivalent to restarting the writer with its
// queue intact, so Submit never deadlocks behind a dead consumer.
func (e *Engine) writer(i int, s *shard) {
	defer e.wg.Done()
	for q := range s.queue {
		batch := q.ops
		n := uint64(len(batch))
		// One KindBatch span per sampled dequeue (q.enq is stamped on 1 in
		// batchSpanSample batches): queue wait is dequeue-time minus the
		// stamped enqueue time, apply is the batch's time under the shard
		// write lock. Per-sampled-batch (not per-op) records keep the traced
		// batch path to a fraction of a ns per op.
		sp := span.Span{}
		if q.enq != 0 && e.cfg.Span.Enabled() {
			sp = e.cfg.Span.StartAt(q.enq, i, batch[0].Key)
			sp.SetBatch(len(batch))
			sp.Mark(span.StageQueue)
		}
		if e.safeApply(s, batch) {
			s.applied.Add(n)
			s.ops.Add(n)
			sp.Mark(span.StageApply)
			sp.Finish(span.KindBatch)
		} else {
			// The batch's effect on the cache is undefined (it panicked
			// part-way); account every op as shed so produced stays equal
			// to applied + dropped.
			s.failed.Add(n)
			s.drops.Add(n)
			s.dropped.Add(n)
			sp.Mark(span.StageApply)
			sp.SetFlags(span.FlagError)
			sp.Finish(span.KindBatch)
		}
		e.batchSize.Observe(float64(n))
		e.pool.Put(batch[:0])
	}
}

// safeApply applies one batch, converting a panic in the policy code into a
// counted, recovered fault. Returns false when the batch panicked.
func (e *Engine) safeApply(s *shard, batch []Op) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			s.panics.Add(1)
			s.panicCount.Inc()
			ok = false
		}
	}()
	e.applyBatch(s, batch)
	return true
}

// applyBatch applies one op batch under the shard mutator lock. A cache that
// implements policy.BatchUpdater (the flat P4LRU3 core) consumes the queued
// batch directly — ops are policy.Op, so no conversion happens and the
// whole apply loop allocates nothing; anything else gets the per-op Update
// loop. With an eviction hook configured the batch goes through
// policy.EvictBatchUpdater (or the per-op loop), since the eviction-blind
// batch walk cannot feed the hook.
func (e *Engine) applyBatch(s *shard, batch []Op) {
	s.mu.Lock()
	// Deferred so a panicking policy cannot strand the shard mutator lock —
	// the supervisor recovers the panic and the shard keeps serving.
	defer s.mu.Unlock()
	switch {
	case e.cfg.OnEvict != nil:
		if s.evictBatch != nil {
			s.evictBatch.UpdateBatchEvict(batch, e.cfg.OnEvict)
		} else {
			for _, op := range batch {
				res := s.cache.Update(op.Key, op.Value, op.Token, op.Now)
				if res.Evicted {
					e.cfg.OnEvict(res.EvictedKey, res.EvictedValue)
				}
			}
		}
	case s.batch != nil:
		s.batch.UpdateBatch(batch)
	default:
		for _, op := range batch {
			s.cache.Update(op.Key, op.Value, op.Token, op.Now)
		}
	}
}

// ShardFor returns the home shard of k — deterministic for a given seed and
// shard count, like the paper's per-packet unit index h(key).
func (e *Engine) ShardFor(k uint64) int { return e.route.Index(k, len(e.shards)) }

// Shards returns the shard count.
func (e *Engine) Shards() int { return len(e.shards) }

// Query looks k up in its home shard without modifying replacement state.
// No engine lock is taken on any path: flat seqlock caches are wait-free
// against the shard writer, and any other policy was wrapped in
// policy.Synchronized at construction, whose internal read lock lets
// queries of one shard proceed in parallel.
func (e *Engine) Query(k uint64) (uint64, policy.Token, bool) {
	return e.queryAt(e.ShardFor(k), k)
}

// QuerySpanned is Query for callers carrying an open trace span: the lookup
// interval is attributed to StageQuery and the span learns its home shard.
// The span is NOT finished — the caller owns its lifecycle (a Tiered miss
// continues into the fetch stages). A nil or inactive span degrades to Query.
func (e *Engine) QuerySpanned(k uint64, sp *span.Span) (uint64, policy.Token, bool) {
	i := e.ShardFor(k)
	sp.SetShard(i)
	v, tok, ok := e.queryAt(i, k)
	sp.Mark(span.StageQuery)
	return v, tok, ok
}

// queryAt is the shared lookup core for Query and QuerySpanned.
func (e *Engine) queryAt(i int, k uint64) (uint64, policy.Token, bool) {
	v, tok, ok := e.shards[i].cache.Query(k)
	e.queries.Inc()
	if ok {
		e.hits.Inc()
	}
	return v, tok, ok
}

// Apply performs one synchronous Update on k's home shard, bypassing the
// queue, and returns the policy's Result. Ordering against queued batches
// in flight on the same shard is unspecified.
func (e *Engine) Apply(op Op) policy.Result {
	s := e.shards[e.ShardFor(op.Key)]
	s.mu.Lock()
	res := s.cache.Update(op.Key, op.Value, op.Token, op.Now)
	if res.Evicted && e.cfg.OnEvict != nil {
		e.cfg.OnEvict(res.EvictedKey, res.EvictedValue)
	}
	s.mu.Unlock()
	s.ops.Inc()
	return res
}

// applyChunkMax bounds ApplyBatch's stack scratch: op batches are processed
// in chunks of this many, with shard routing precomputed per chunk.
const applyChunkMax = 256

// ApplyBatch synchronously applies a pre-built op slice, bypassing the
// queue — the batched network path's entry point: a whole recvmmsg batch of
// reply packets decodes straight into ops and must observe its own writes
// before the replies are forwarded (the paper's §3.2 query/update split puts
// the mutation on the reply path). Ops are grouped by home shard so each
// shard's write lock is taken once per shard visit, not once per op; the
// grouping scratch lives on the stack and gather buffers come from the batch
// pool, so the call allocates nothing. Like Apply, ordering against queued
// batches in flight on the same shards is unspecified, and per-op Results
// are not reported — callers that need a Result use Apply.
func (e *Engine) ApplyBatch(ops []Op) {
	if len(ops) == 0 {
		return
	}
	if len(e.shards) == 1 {
		s := e.shards[0]
		e.applyBatch(s, ops)
		s.ops.Add(uint64(len(ops)))
		return
	}
	if len(e.shards) >= int(^uint16(0)) {
		// Keeps the uint16 home scratch (and its done marker) honest;
		// unreachable at any realistic shard count.
		for _, op := range ops {
			e.Apply(op)
		}
		return
	}
	const done = ^uint16(0)
	var home [applyChunkMax]uint16
	for base := 0; base < len(ops); base += applyChunkMax {
		part := ops[base:min(base+applyChunkMax, len(ops))]
		for i, op := range part {
			home[i] = uint16(e.ShardFor(op.Key))
		}
		for i := 0; i < len(part); i++ {
			if home[i] == done {
				continue
			}
			sh := home[i]
			buf := e.pool.Get().([]Op)
			for j := i; j < len(part); j++ {
				if home[j] == sh {
					buf = append(buf, part[j])
					home[j] = done
				}
			}
			s := e.shards[sh]
			e.applyBatch(s, buf)
			s.ops.Add(uint64(len(buf)))
			e.pool.Put(buf[:0])
		}
	}
}

// Submit enqueues a single op on its home shard (a batch of one — hot
// producers should use a Submitter instead). It reports whether the op was
// accepted; false means the engine is closed or draining, the shard queue
// was full in drop mode, or the shedder declined it at normal priority.
func (e *Engine) Submit(op Op) bool {
	return e.SubmitPriority(op, resilience.PriNormal)
}

// SubmitPriority is Submit with an explicit shedding priority: under
// pressure the configured shedder drops PriLow work first and PriHigh last.
// Without a shedder the priority is ignored.
func (e *Engine) SubmitPriority(op Op, pri resilience.Priority) bool {
	buf := e.pool.Get().([]Op)
	return e.submitBatch(e.ShardFor(op.Key), append(buf, op), pri)
}

// submitBatch hands one batch to shard i, honouring Block/drop semantics and
// the shedder's admission verdict. The batch buffer is owned by the queue
// (and recycled by the writer) on success, by the pool again on failure.
func (e *Engine) submitBatch(i int, batch []Op, pri resilience.Priority) bool {
	if len(batch) == 0 {
		return true
	}
	s := e.shards[i]
	n := uint64(len(batch))

	e.lifeMu.RLock()
	if e.closed || e.draining.Load() {
		e.lifeMu.RUnlock()
		s.drops.Add(n)
		s.dropped.Add(n)
		e.pool.Put(batch[:0])
		return false
	}
	if sh := e.cfg.Shedder; sh != nil {
		frac := float64(len(s.queue)) / float64(cap(s.queue))
		if !sh.Admit(pri, frac) {
			e.lifeMu.RUnlock()
			s.drops.Add(n)
			s.dropped.Add(n)
			if e.cfg.Span.Enabled() {
				// A shed decision is an op outcome worth tracing: zero
				// stage time, flagged shed, attributed to the shard whose
				// pressure caused it.
				sp := e.cfg.Span.Start(i, batch[0].Key)
				sp.SetBatch(len(batch))
				sp.SetFlags(span.FlagShed)
				sp.Finish(span.KindShed)
			}
			e.pool.Put(batch[:0])
			return false
		}
	}
	var enq int64
	if e.cfg.Span.Enabled() && e.spanTick.Add(1)&(batchSpanSample-1) == 0 {
		enq = e.cfg.Span.Clock()
	}
	s.submitted.Add(n)
	if e.cfg.Block {
		s.queue <- queued{ops: batch, enq: enq}
		e.lifeMu.RUnlock()
		return true
	}
	select {
	case s.queue <- queued{ops: batch, enq: enq}:
		e.lifeMu.RUnlock()
		return true
	default:
		e.lifeMu.RUnlock()
		s.submitted.Add(^(n - 1)) // undo: the batch never entered the queue
		s.drops.Add(n)
		s.dropped.Add(n)
		e.pool.Put(batch[:0])
		return false
	}
}

// Flush blocks until every op submitted before the call has been applied
// (or lost to a recovered writer panic, which is counted as dropped). Ops
// submitted concurrently with Flush may or may not be covered.
func (e *Engine) Flush() {
	for _, s := range e.shards {
		target := s.submitted.Load()
		for s.applied.Load()+s.failed.Load() < target {
			time.Sleep(20 * time.Microsecond)
		}
	}
}

// Drain stops intake and flushes the writers: Submit reports false from the
// moment Drain is called, queued batches are applied, and the engine keeps
// serving Query (and Apply) afterwards — the graceful half of a shutdown,
// typically followed by Snapshot and Close. Returns ctx's error if the
// queues do not empty in time; the intake stays stopped either way.
func (e *Engine) Drain(ctx context.Context) error {
	e.draining.Store(true)
	for _, s := range e.shards {
		target := s.submitted.Load()
		for s.applied.Load()+s.failed.Load() < target {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(50 * time.Microsecond):
			}
		}
	}
	return nil
}

// Close drains every queue, stops the writers and the watchdog and waits
// for them. Submit after Close reports false. Close is idempotent.
func (e *Engine) Close() {
	e.lifeMu.Lock()
	if e.closed {
		e.lifeMu.Unlock()
		return
	}
	e.closed = true
	for _, s := range e.shards {
		close(s.queue) // writers drain the remaining batches, then exit
	}
	e.lifeMu.Unlock()
	if e.watchdogStop != nil {
		close(e.watchdogStop)
		<-e.watchdogDone
	}
	e.wg.Wait()
}

// watchdog periodically compares each shard's progress counters against its
// queue: work waiting with no progress for a full stall window flags the
// shard (gauge, Stats.Stalled, Healthy). Progress or an empty queue clears
// the flag — a recovered shard goes back to healthy on its own.
func (e *Engine) watchdog(window time.Duration) {
	defer close(e.watchdogDone)
	tick := window / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	type progress struct {
		done  uint64 // applied + failed at last change
		since time.Time
	}
	last := make([]progress, len(e.shards))
	now := time.Now()
	for i, s := range e.shards {
		last[i] = progress{done: s.applied.Load() + s.failed.Load(), since: now}
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-e.watchdogStop:
			return
		case now = <-t.C:
		}
		for i, s := range e.shards {
			done := s.applied.Load() + s.failed.Load()
			if done != last[i].done || len(s.queue) == 0 {
				last[i] = progress{done: done, since: now}
				if s.stalled.CompareAndSwap(true, false) {
					s.stallGauge.Set(0)
				}
				continue
			}
			if now.Sub(last[i].since) >= window && s.stalled.CompareAndSwap(false, true) {
				s.stallGauge.Set(1)
			}
		}
	}
}

// Healthy reports nil when no shard is flagged stalled — the engine's
// contribution to a readiness probe (resilience.Health.Register).
func (e *Engine) Healthy() error {
	for i, s := range e.shards {
		if s.stalled.Load() {
			return fmt.Errorf("engine: shard %d stalled (queue %d batches, writer not advancing)",
				i, len(s.queue))
		}
	}
	return nil
}

// Len sums the shard occupancies through the lock-free read path — a stats
// snapshot never contends with the shard writers.
func (e *Engine) Len() int {
	total := 0
	for _, s := range e.shards {
		total += s.cache.Len()
	}
	return total
}

// Capacity sums the shard capacities.
func (e *Engine) Capacity() int {
	total := 0
	for _, s := range e.shards {
		total += s.cache.Capacity()
	}
	return total
}

// Name is "<policy>×<shards>".
func (e *Engine) Name() string {
	return fmt.Sprintf("%s×%d", e.shards[0].cache.Name(), len(e.shards))
}

// Range iterates all cached pairs shard by shard until fn returns false,
// through the lock-free read path (flat caches snapshot each unit via its
// seqlock; wrapped caches read-lock internally). The result is not a
// point-in-time snapshot across shards — or across units within a flat
// shard — but every pair seen was genuinely cached at the moment its unit
// was read.
func (e *Engine) Range(fn func(k, v uint64) bool) {
	for _, s := range e.shards {
		more := true
		s.cache.Range(func(k, v uint64) bool {
			more = fn(k, v)
			return more
		})
		if !more {
			return
		}
	}
}

// ShardStats is one shard's accounting snapshot. The invariant
// Submitted == Applied + Failed holds once the queue drains, and Failed is
// also included in Dropped, so produced == Applied + Dropped overall.
type ShardStats struct {
	Submitted uint64 // ops accepted into the queue
	Applied   uint64 // ops the writer has applied
	Dropped   uint64 // ops shed (full queue, shedder, close/drain, or panic)
	Failed    uint64 // ops lost to recovered writer panics (⊆ Dropped)
	Panics    uint64 // writer panics recovered
	Stalled   bool   // watchdog verdict
	QueueLen  int    // batches waiting right now
	QueueCap  int    // queue capacity in batches (QueueDepth)
	Len       int    // cache occupancy
}

// Stats snapshots every shard without touching the mutator locks: counters
// are atomics and Len reads through the lock-free path, so a stats scrape
// under write load costs the writers nothing.
func (e *Engine) Stats() []ShardStats {
	out := make([]ShardStats, len(e.shards))
	for i, s := range e.shards {
		n := s.cache.Len()
		out[i] = ShardStats{
			Submitted: s.submitted.Load(),
			Applied:   s.applied.Load(),
			Dropped:   s.drops.Load(),
			Failed:    s.failed.Load(),
			Panics:    s.panics.Load(),
			Stalled:   s.stalled.Load(),
			QueueLen:  len(s.queue),
			QueueCap:  cap(s.queue),
			Len:       n,
		}
	}
	return out
}

// Dropped sums the drop counters.
func (e *Engine) Dropped() uint64 {
	var total uint64
	for _, s := range e.shards {
		total += s.drops.Load()
	}
	return total
}

// Submitter is a per-goroutine batching front end: ops accumulate in
// per-shard buffers and are handed to the shard queues BatchSize at a time,
// amortizing the channel synchronization. A Submitter is NOT safe for
// concurrent use — give each producer goroutine its own and Flush it before
// the goroutine exits.
type Submitter struct {
	e    *Engine
	bufs [][]Op
	// dropped counts ops this submitter shed (engine drop counters include
	// them too; this is the producer-local view).
	dropped uint64
}

// NewSubmitter returns a batching handle for one producer goroutine.
func (e *Engine) NewSubmitter() *Submitter {
	return &Submitter{e: e, bufs: make([][]Op, len(e.shards))}
}

// Submit buffers one op; the op reaches its shard when the shard's buffer
// fills (or on Flush).
func (s *Submitter) Submit(op Op) {
	i := s.e.ShardFor(op.Key)
	if s.bufs[i] == nil {
		s.bufs[i] = s.e.pool.Get().([]Op)
	}
	s.bufs[i] = append(s.bufs[i], op)
	if len(s.bufs[i]) >= s.e.cfg.BatchSize {
		s.flushShard(i)
	}
}

// Flush hands every partial batch to its shard.
func (s *Submitter) Flush() {
	for i := range s.bufs {
		if len(s.bufs[i]) > 0 {
			s.flushShard(i)
		}
	}
}

// Dropped returns the ops this submitter shed on full queues.
func (s *Submitter) Dropped() uint64 { return s.dropped }

func (s *Submitter) flushShard(i int) {
	n := uint64(len(s.bufs[i]))
	if !s.e.submitBatch(i, s.bufs[i], resilience.PriNormal) {
		s.dropped += n
	}
	s.bufs[i] = nil
}
