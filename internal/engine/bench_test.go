package engine

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"github.com/p4lru/p4lru/internal/backing"
	"github.com/p4lru/p4lru/internal/obs"
	"github.com/p4lru/p4lru/internal/obs/span"
	"github.com/p4lru/p4lru/internal/policy"
	"github.com/p4lru/p4lru/internal/quantile"
)

// benchKeys is a shared Zipf-ish key stream: heavy-tailed like the traces,
// wide enough that shards all see traffic.
func benchKeys() []uint64 {
	rng := rand.New(rand.NewSource(1))
	zipf := rand.NewZipf(rng, 1.2, 1, 1<<20)
	keys := make([]uint64, 1<<16)
	for i := range keys {
		keys[i] = zipf.Uint64() + 1
	}
	return keys
}

// BenchmarkEngine measures serving throughput (one Query + one batched
// Submit per op) as the shard count scales 1 → GOMAXPROCS. The memory
// budget is fixed, so this isolates the concurrency win: per-op cost should
// fall as shards climb, >2x ops/sec at 8 shards vs 1 on a multi-core
// machine.
func BenchmarkEngine(b *testing.B) {
	shardCounts := []int{1, 2, 4, 8}
	if max := runtime.GOMAXPROCS(0); max > 8 {
		shardCounts = append(shardCounts, max)
	}
	keys := benchKeys()

	for _, shards := range shardCounts {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			e, err := NewFromSpec(
				policy.Spec{Kind: policy.KindP4LRU3, MemBytes: 1 << 20, Seed: 1},
				Config{Shards: shards, Block: true},
			)
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()

			var cursor atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				sub := e.NewSubmitter()
				i := cursor.Add(1 << 40) // decorrelate worker streams
				for pb.Next() {
					k := keys[i&uint64(len(keys)-1)]
					i++
					if _, _, ok := e.Query(k); !ok {
						sub.Submit(Op{Key: k, Value: k})
					}
				}
				sub.Flush()
			})
			e.Flush()
			b.StopTimer()
		})
	}
}

// BenchmarkEngineQuery isolates the read path (shared read locks, no
// writer traffic).
func BenchmarkEngineQuery(b *testing.B) {
	e, err := NewFromSpec(
		policy.Spec{Kind: policy.KindP4LRU3, MemBytes: 1 << 20, Seed: 1},
		Config{Shards: runtime.GOMAXPROCS(0), Block: true},
	)
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	keys := benchKeys()
	for _, k := range keys {
		e.Apply(Op{Key: k, Value: k})
	}
	var cursor atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := cursor.Add(1 << 40)
		for pb.Next() {
			e.Query(keys[i&uint64(len(keys)-1)])
			i++
		}
	})
}

// BenchmarkTraceOverhead measures the always-on tracing tax on the engine
// batch-submit path: trace=on runs with an enabled tracer at the default
// sampling rate (per-batch spans, live tail threshold, stage histograms),
// trace=off with no tracer wired at all. The CI bench-smoke gate holds
// trace=on within 5% of trace=off (benchjson -maxratio). Serial on purpose:
// RunParallel contention noise would swamp a single-digit-percent budget.
func BenchmarkTraceOverhead(b *testing.B) {
	keys := benchKeys()
	for _, traced := range []bool{false, true} {
		name := "trace=off"
		var tr *span.Tracer
		if traced {
			name = "trace=on"
			tr = span.New(span.Config{Shards: runtime.GOMAXPROCS(0), Obs: obs.NewRegistry()})
			tr.SetEnabled(true)
		}
		b.Run(name, func(b *testing.B) {
			e, err := NewFromSpec(
				policy.Spec{Kind: policy.KindP4LRU3, MemBytes: 1 << 20, Seed: 1},
				Config{Shards: runtime.GOMAXPROCS(0), Block: true, Span: tr},
			)
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			sub := e.NewSubmitter()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := keys[i&(len(keys)-1)]
				sub.Submit(Op{Key: k, Value: k})
			}
			sub.Flush()
			e.Flush()
			b.StopTimer()
		})
	}
}

// BenchmarkTiered measures the look-through pair. op=hit is the acceptance
// gate: serving a resident key through GetOrLoad must stay allocation-free
// and within a small factor of the bare Query path (benchjson enforces both
// against the committed baseline). op=miss drives every iteration through
// the loader against an in-memory store and reports end-to-end miss-latency
// p50/p99 as custom metrics, which benchjson folds into the miss-latency
// panel of BENCH_<n>.json.
func BenchmarkTiered(b *testing.B) {
	newTiered := func(b *testing.B, tr *span.Tracer) *Tiered {
		e, err := NewFromSpec(
			policy.Spec{Kind: policy.KindP4LRU3, MemBytes: 1 << 20, Seed: 1},
			Config{Shards: runtime.GOMAXPROCS(0), Block: true, Span: tr},
		)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(e.Close)
		store := backing.NewMapStore()
		store.Synth = true
		return NewTiered(e, store, backing.LoaderConfig{MaxInflight: 256})
	}

	hitBench := func(b *testing.B, t *Tiered) {
		keys := benchKeys()
		for _, k := range keys {
			t.Apply(Op{Key: k, Value: k})
		}
		var resident []uint64
		for _, k := range keys {
			if _, _, ok := t.Query(k); ok {
				resident = append(resident, k)
			}
		}
		if len(resident) == 0 {
			b.Fatal("no resident keys after warmup")
		}
		ctx := context.Background()
		var cursor atomic.Uint64
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := cursor.Add(1 << 40)
			for pb.Next() {
				k := resident[i%uint64(len(resident))]
				i++
				if _, _, hit, err := t.GetOrLoad(ctx, k); err != nil || !hit {
					b.Errorf("resident key %d: hit=%v err=%v", k, hit, err)
					return
				}
			}
		})
	}

	b.Run("op=hit", func(b *testing.B) {
		hitBench(b, newTiered(b, nil))
	})

	// op=hit-traced re-runs the hit gate with tracing enabled and sampling
	// active: the bench-smoke -zeroalloc gate holds this at 0 allocs/op too,
	// proving the span plumbing never escapes to the heap.
	b.Run("op=hit-traced", func(b *testing.B) {
		tr := span.New(span.Config{Shards: runtime.GOMAXPROCS(0), SampleN: 64, Obs: obs.NewRegistry()})
		tr.SetEnabled(true)
		hitBench(b, newTiered(b, tr))
	})

	b.Run("op=miss", func(b *testing.B) {
		t := newTiered(b, nil)
		ctx := context.Background()
		// Serial on purpose: the per-op latency stream feeds one P²
		// estimator, and a fresh key per iteration keeps every op a miss.
		p50, p99 := quantile.New(0.5), quantile.New(0.99)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			key := uint64(1<<40) + uint64(i)
			start := time.Now()
			if _, _, _, err := t.GetOrLoad(ctx, key); err != nil {
				b.Fatal(err)
			}
			ns := float64(time.Since(start).Nanoseconds())
			p50.Add(ns)
			p99.Add(ns)
		}
		b.StopTimer()
		if p50.Count() > 0 {
			b.ReportMetric(p50.Value(), "p50-miss-ns")
			b.ReportMetric(p99.Value(), "p99-miss-ns")
		}
	})
}
