package engine

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"

	"github.com/p4lru/p4lru/internal/policy"
)

// benchKeys is a shared Zipf-ish key stream: heavy-tailed like the traces,
// wide enough that shards all see traffic.
func benchKeys() []uint64 {
	rng := rand.New(rand.NewSource(1))
	zipf := rand.NewZipf(rng, 1.2, 1, 1<<20)
	keys := make([]uint64, 1<<16)
	for i := range keys {
		keys[i] = zipf.Uint64() + 1
	}
	return keys
}

// BenchmarkEngine measures serving throughput (one Query + one batched
// Submit per op) as the shard count scales 1 → GOMAXPROCS. The memory
// budget is fixed, so this isolates the concurrency win: per-op cost should
// fall as shards climb, >2x ops/sec at 8 shards vs 1 on a multi-core
// machine.
func BenchmarkEngine(b *testing.B) {
	shardCounts := []int{1, 2, 4, 8}
	if max := runtime.GOMAXPROCS(0); max > 8 {
		shardCounts = append(shardCounts, max)
	}
	keys := benchKeys()

	for _, shards := range shardCounts {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			e, err := NewFromSpec(
				policy.Spec{Kind: policy.KindP4LRU3, MemBytes: 1 << 20, Seed: 1},
				Config{Shards: shards, Block: true},
			)
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()

			var cursor atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				sub := e.NewSubmitter()
				i := cursor.Add(1 << 40) // decorrelate worker streams
				for pb.Next() {
					k := keys[i&uint64(len(keys)-1)]
					i++
					if _, _, ok := e.Query(k); !ok {
						sub.Submit(Op{Key: k, Value: k})
					}
				}
				sub.Flush()
			})
			e.Flush()
			b.StopTimer()
		})
	}
}

// BenchmarkEngineQuery isolates the read path (shared read locks, no
// writer traffic).
func BenchmarkEngineQuery(b *testing.B) {
	e, err := NewFromSpec(
		policy.Spec{Kind: policy.KindP4LRU3, MemBytes: 1 << 20, Seed: 1},
		Config{Shards: runtime.GOMAXPROCS(0), Block: true},
	)
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	keys := benchKeys()
	for _, k := range keys {
		e.Apply(Op{Key: k, Value: k})
	}
	var cursor atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := cursor.Add(1 << 40)
		for pb.Next() {
			e.Query(keys[i&uint64(len(keys)-1)])
			i++
		}
	})
}
