package engine

import (
	"testing"

	"github.com/p4lru/p4lru/internal/policy"
)

// TestWriterUsesBatchUpdater pins the wiring: an engine over p4lru3 shards
// applies op batches through the cache's BatchUpdater, and the batched
// path produces the same cache contents as a per-op Apply loop.
func TestWriterUsesBatchUpdater(t *testing.T) {
	spec := policy.Spec{Kind: policy.KindP4LRU3, MemBytes: 64 * 1024, Seed: 1}
	batched, err := NewFromSpec(spec, Config{Shards: 2, Block: true})
	if err != nil {
		t.Fatal(err)
	}
	defer batched.Close()
	looped, err := NewFromSpec(spec, Config{Shards: 2, Block: true})
	if err != nil {
		t.Fatal(err)
	}
	defer looped.Close()

	for _, s := range batched.shards {
		if s.batch == nil {
			t.Fatal("p4lru3 shard cache does not expose policy.BatchUpdater")
		}
	}

	sub := batched.NewSubmitter()
	for i := 0; i < 20000; i++ {
		k := uint64(i*2654435761) % 4096
		sub.Submit(Op{Key: k, Value: uint64(i)})
		looped.Apply(Op{Key: k, Value: uint64(i)})
	}
	sub.Flush()
	batched.Flush()

	if batched.Len() != looped.Len() {
		t.Fatalf("occupancy diverged: batched %d looped %d", batched.Len(), looped.Len())
	}
	looped.Range(func(k, v uint64) bool {
		got, _, ok := batched.Query(k)
		if !ok || got != v {
			t.Fatalf("key %d: batched engine has (%d,%v), want (%d,true)", k, got, ok, v)
		}
		return true
	})
}

// TestApplyBatchZeroAlloc pins 0 allocs for the shard writer's batch-apply
// loop over the flat core — the engine's steady-state write path.
func TestApplyBatchZeroAlloc(t *testing.T) {
	e, err := NewFromSpec(
		policy.Spec{Kind: policy.KindP4LRU3, MemBytes: 256 * 1024, Seed: 1},
		Config{Shards: 1, Block: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	batch := make([]Op, 64)
	for i := range batch {
		batch[i] = Op{Key: uint64(i * 2654435761), Value: uint64(i)}
	}
	s := e.shards[0]
	e.applyBatch(s, batch) // grow the cache-side scratch once
	if n := testing.AllocsPerRun(200, func() {
		e.applyBatch(s, batch)
	}); n != 0 {
		t.Errorf("applyBatch allocates %v/batch over the flat core, want 0", n)
	}
}
