package engine

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/fnv"
	"io"

	"github.com/p4lru/p4lru/internal/policy"
)

// Snapshot format (version 1), all integers little-endian:
//
//	[8]byte  magic "P4LRUSNP"
//	uint16   version (1)
//	uint16   flags (0, reserved)
//	uint32   reserved
//	chunks:  uint32 n (pairs in this chunk, 0 terminates), then n × (key
//	         uint64, value uint64)
//	trailer: uint64 total pair count, uint64 FNV-1a checksum over every
//	         pair's 16 encoded bytes in write order
//
// The format carries (key, value) pairs only — replacement-state recency is
// reconstructed by re-inserting, so a restored cache answers the same
// queries with the same values but may order a unit's residents differently.

var snapshotMagic = [8]byte{'P', '4', 'L', 'R', 'U', 'S', 'N', 'P'}

const (
	snapshotVersion   = 1
	snapshotChunkMax  = 4096    // pairs per chunk we write
	snapshotChunkSane = 1 << 20 // largest chunk we accept (guards absurd counts)
)

// Snapshot writes every cached (key, value) pair to w in the versioned
// binary format above. Call Drain first for a stable image — Snapshot locks
// one shard at a time, so writers racing it produce a torn (but well-formed)
// snapshot, exactly like Range.
func (e *Engine) Snapshot(w io.Writer) error {
	return e.SnapshotFiltered(w, nil)
}

// SnapshotFiltered is Snapshot restricted to the pairs keep reports true
// for (nil keeps everything). The image is a complete, self-checksummed
// snapshot of the kept subset — the cluster tier streams hash-range slices
// of a node's contents through this without the recipient needing to know
// the filter. Like Snapshot, it reads through the lock-free path, so it can
// run against a live engine.
func (e *Engine) SnapshotFiltered(w io.Writer, keep func(key uint64) bool) error {
	sw, err := NewSnapshotWriter(w)
	if err != nil {
		return err
	}
	werr := error(nil)
	e.Range(func(k, v uint64) bool {
		if keep != nil && !keep(k) {
			return true
		}
		werr = sw.Add(k, v)
		return werr == nil
	})
	if werr != nil {
		return werr
	}
	return sw.Close()
}

// SnapshotWriter streams (key, value) pairs into the versioned snapshot
// format, one Add at a time — the encoder Snapshot/SnapshotFiltered are
// built on, exported so callers holding pairs outside any engine (the
// cluster tier's hint logs) can synthesize an image any Restore variant
// accepts. NewSnapshotWriter writes the header; Close flushes the final
// chunk and the checksummed trailer. Not safe for concurrent use.
type SnapshotWriter struct {
	bw      *bufio.Writer
	sum     hash.Hash64
	chunk   [snapshotChunkMax * 16]byte
	inChunk int
	total   uint64
}

// NewSnapshotWriter starts a snapshot image on w.
func NewSnapshotWriter(w io.Writer) (*SnapshotWriter, error) {
	sw := &SnapshotWriter{bw: bufio.NewWriter(w), sum: fnv.New64a()}
	if _, err := sw.bw.Write(snapshotMagic[:]); err != nil {
		return nil, fmt.Errorf("engine: snapshot header: %w", err)
	}
	var head [8]byte
	binary.LittleEndian.PutUint16(head[0:2], snapshotVersion)
	if _, err := sw.bw.Write(head[:]); err != nil {
		return nil, fmt.Errorf("engine: snapshot header: %w", err)
	}
	return sw, nil
}

// Add appends one pair to the image.
func (sw *SnapshotWriter) Add(k, v uint64) error {
	off := sw.inChunk * 16
	binary.LittleEndian.PutUint64(sw.chunk[off:off+8], k)
	binary.LittleEndian.PutUint64(sw.chunk[off+8:off+16], v)
	_, _ = sw.sum.Write(sw.chunk[off : off+16])
	sw.inChunk++
	sw.total++
	if sw.inChunk == snapshotChunkMax {
		return sw.flushChunk()
	}
	return nil
}

func (sw *SnapshotWriter) flushChunk() error {
	if sw.inChunk == 0 {
		return nil
	}
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(sw.inChunk))
	if _, err := sw.bw.Write(n[:]); err != nil {
		return fmt.Errorf("engine: snapshot write: %w", err)
	}
	if _, err := sw.bw.Write(sw.chunk[:sw.inChunk*16]); err != nil {
		return fmt.Errorf("engine: snapshot write: %w", err)
	}
	sw.inChunk = 0
	return nil
}

// Close terminates the image: final partial chunk, empty terminator chunk,
// and the (count, checksum) trailer restores verify against.
func (sw *SnapshotWriter) Close() error {
	if err := sw.flushChunk(); err != nil {
		return err
	}
	var tail [4 + 8 + 8]byte // terminating empty chunk + trailer
	binary.LittleEndian.PutUint64(tail[4:12], sw.total)
	binary.LittleEndian.PutUint64(tail[12:20], sw.sum.Sum64())
	if _, err := sw.bw.Write(tail[:]); err != nil {
		return fmt.Errorf("engine: snapshot trailer: %w", err)
	}
	return sw.bw.Flush()
}

// RestoreSnapshot reads a Snapshot image from r and installs every pair into
// the engine through the shard batch path (synchronously — no queueing, no
// shedding), returning the number of pairs restored. Restore into an engine
// built from the same spec, seed and shard count as the one that wrote the
// snapshot: pairs route to the same home shards and the same cache geometry,
// so the restored engine reports the same Len and answers the same queries.
// A mismatched geometry still restores, but capacity differences may evict.
func (e *Engine) RestoreSnapshot(r io.Reader) (int, error) {
	return e.restoreSnapshot(r, false)
}

// RestoreSnapshotIfAbsent is RestoreSnapshot except pairs whose key is
// already resident are skipped instead of overwritten, and the returned
// count is the pairs actually installed. It exists for cluster migration's
// swap-then-migrate order: the ring is flipped first, so by the time a
// range's snapshot arrives the new owner may already have accepted fresher
// writes for some keys — a blind restore would roll those back. The check
// races concurrent writers per key (query, then apply), a window the
// single-writer shard discipline keeps to one batch.
func (e *Engine) RestoreSnapshotIfAbsent(r io.Reader) (int, error) {
	return e.restoreSnapshot(r, true)
}

func (e *Engine) restoreSnapshot(r io.Reader, ifAbsent bool) (int, error) {
	br := bufio.NewReader(r)
	var header [16]byte
	if _, err := io.ReadFull(br, header[:]); err != nil {
		return 0, fmt.Errorf("engine: snapshot header: %w", err)
	}
	if [8]byte(header[:8]) != snapshotMagic {
		return 0, fmt.Errorf("engine: not a snapshot (bad magic %q)", header[:8])
	}
	if v := binary.LittleEndian.Uint16(header[8:10]); v != snapshotVersion {
		return 0, fmt.Errorf("engine: snapshot version %d not supported (want %d)", v, snapshotVersion)
	}

	sum := fnv.New64a()
	batches := make([][]Op, len(e.shards))
	var read, restored uint64
	flush := func(i int) {
		if len(batches[i]) == 0 {
			return
		}
		batch := batches[i]
		if ifAbsent {
			kept := batch[:0]
			for _, op := range batch {
				if _, _, ok := e.Query(op.Key); !ok {
					kept = append(kept, op)
				}
			}
			batch = kept
		}
		restored += uint64(len(batch))
		if len(batch) > 0 {
			e.restoreBatch(i, batch)
		}
		batches[i] = batches[i][:0]
	}
	var buf [16]byte
	for {
		var nb [4]byte
		if _, err := io.ReadFull(br, nb[:]); err != nil {
			return int(restored), fmt.Errorf("engine: snapshot chunk header: %w", err)
		}
		n := binary.LittleEndian.Uint32(nb[:])
		if n == 0 {
			break
		}
		if n > snapshotChunkSane {
			return int(restored), fmt.Errorf("engine: snapshot chunk of %d pairs exceeds sanity bound", n)
		}
		for j := uint32(0); j < n; j++ {
			if _, err := io.ReadFull(br, buf[:]); err != nil {
				return int(restored), fmt.Errorf("engine: snapshot pair: %w", err)
			}
			_, _ = sum.Write(buf[:])
			k := binary.LittleEndian.Uint64(buf[0:8])
			v := binary.LittleEndian.Uint64(buf[8:16])
			i := e.ShardFor(k)
			batches[i] = append(batches[i], Op{Key: k, Value: v, Token: policy.NoToken})
			read++
			if len(batches[i]) >= e.cfg.BatchSize {
				flush(i)
			}
		}
	}
	for i := range batches {
		flush(i)
	}

	var trailer [16]byte
	if _, err := io.ReadFull(br, trailer[:]); err != nil {
		return int(restored), fmt.Errorf("engine: snapshot trailer: %w", err)
	}
	if want := binary.LittleEndian.Uint64(trailer[0:8]); want != read {
		return int(restored), fmt.Errorf("engine: snapshot count mismatch: trailer %d, read %d", want, read)
	}
	if want := binary.LittleEndian.Uint64(trailer[8:16]); want != sum.Sum64() {
		return int(restored), fmt.Errorf("engine: snapshot checksum mismatch")
	}
	return int(restored), nil
}

// restoreBatch applies one restore batch synchronously on shard i, with the
// same supervision and accounting as the writer path (a panicking policy
// cannot strand the restore; lost ops count as dropped).
func (e *Engine) restoreBatch(i int, batch []Op) {
	s := e.shards[i]
	n := uint64(len(batch))
	s.submitted.Add(n)
	if e.safeApply(s, batch) {
		s.applied.Add(n)
		s.ops.Add(n)
	} else {
		s.failed.Add(n)
		s.drops.Add(n)
		s.dropped.Add(n)
	}
}
