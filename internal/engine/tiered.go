package engine

import (
	"context"
	"time"

	"github.com/p4lru/p4lru/internal/backing"
	"github.com/p4lru/p4lru/internal/obs/span"
	"github.com/p4lru/p4lru/internal/policy"
	"github.com/p4lru/p4lru/internal/resilience"
)

// Tiered couples an Engine with a backing.Loader into a look-through
// serving pair: Query hits serve from the cache tier at full speed (the
// zero-alloc engine read path, untouched), and misses go to the backing
// store through the loader — coalesced, bounded, retried — with successful
// fetches installed back into the engine via the batch path.
//
// The division of labour mirrors the paper's deployments: the engine is the
// switch (fast, bounded, never blocks on the backend) and the Store is the
// server behind it. When the store degrades, the engine keeps answering
// hits; only misses pay, and they fail fast once the loader's retry budget
// is spent — or in a single check once the loader's circuit breaker has
// opened (backing.LoaderConfig.Breaker).
//
// When the engine is built with a resilience.Shedder, the miss path is also
// the first rung of its degradation ladder: GetOrLoad asks the shedder at
// PriLow before fetching (hits are never gated — the hit path stays the
// zero-alloc Query), and every miss's end-to-end latency feeds the
// shedder's EWMA, so a slow backend raises the pressure that sheds work.
//
// Write-behind is wired at engine construction, not here: build the engine
// with Config.OnEvict = (*backing.WriteBehind).OnEvict so evictions drain
// into the store.
type Tiered struct {
	*Engine
	loader *backing.Loader
	epoch  time.Time
}

// NewTiered builds the pairing. cfg.Fill is chained, not replaced: the
// loader first installs each fetched value into the engine (Submit through
// the batch path, tolerating drop-mode shedding), then calls any
// caller-supplied Fill.
func NewTiered(e *Engine, store backing.Store, cfg backing.LoaderConfig) *Tiered {
	t := &Tiered{Engine: e, epoch: time.Now()}
	userFill := cfg.Fill
	cfg.Fill = func(key, val uint64) {
		t.Engine.Submit(Op{Key: key, Value: val, Token: policy.NoToken, Now: time.Since(t.epoch)})
		if userFill != nil {
			userFill(key, val)
		}
	}
	t.loader = backing.NewLoader(store, cfg)
	return t
}

// Loader exposes the miss path (for stats and direct loads).
func (t *Tiered) Loader() *backing.Loader { return t.loader }

// GetOrLoad serves key look-through: a cache hit returns immediately with
// hit=true and the policy's token (callers that promote on hit pass it back
// via Submit); a miss fetches through the loader, installs on success and
// returns the fetched value with hit=false. The error is the loader's —
// backing.ErrNotFound for definitive misses, a retry-budget failure when
// the store is down, backing.ErrCircuitOpen when the breaker rejected the
// fetch, resilience.ErrShed when the engine's shedder declined the miss at
// the current pressure, or ctx's error.
func (t *Tiered) GetOrLoad(ctx context.Context, key uint64) (val uint64, tok policy.Token, hit bool, err error) {
	tr := t.Engine.cfg.Span
	if !tr.Enabled() {
		// The untraced fast path: exactly the pre-tracing code.
		if v, tok, ok := t.Engine.Query(key); ok {
			return v, tok, true, nil
		}
		v, err := t.load(ctx, key, nil)
		return v, policy.NoToken, false, err
	}

	sp := tr.Start(0, key)
	if v, tok, ok := t.Engine.QuerySpanned(key, &sp); ok {
		sp.SetFlags(span.FlagHit)
		sp.Finish(span.KindHit)
		return v, tok, true, nil
	}
	v, err := t.load(ctx, key, &sp)
	sp.Mark(span.StageMiss) // install + shedder bookkeeping after the fetch
	switch {
	case err == nil:
		sp.Finish(span.KindMiss)
	case err == resilience.ErrShed:
		sp.SetFlags(span.FlagShed)
		sp.Finish(span.KindShed)
	default:
		sp.SetFlags(span.FlagError)
		sp.Finish(span.KindMissFail)
	}
	return v, policy.NoToken, false, err
}

// load is the shared miss path: shedder admission at PriLow, the loader
// fetch (spanned when sp is non-nil), and the miss-latency EWMA feedback.
func (t *Tiered) load(ctx context.Context, key uint64, sp *span.Span) (uint64, error) {
	if sh := t.Engine.cfg.Shedder; sh != nil {
		if !sh.Admit(resilience.PriLow, 0) {
			return 0, resilience.ErrShed
		}
		start := time.Now()
		v, err := t.loader.GetSpanned(ctx, key, sp)
		sh.Observe(time.Since(start))
		return v, err
	}
	return t.loader.GetSpanned(ctx, key, sp)
}
