package engine

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/p4lru/p4lru/internal/backing"
	"github.com/p4lru/p4lru/internal/policy"
)

func TestTieredLookThrough(t *testing.T) {
	e := newTestEngine(t, Config{})
	store := backing.NewMapStore().Preload(1000)
	tiered := NewTiered(e, store, backing.LoaderConfig{})

	// First access misses and fetches through the store.
	v, _, hit, err := tiered.GetOrLoad(context.Background(), 42)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("cold key reported as hit")
	}
	if want := uint64(42) ^ backing.SynthSalt; v != want {
		t.Fatalf("miss value = %d, want %d", v, want)
	}

	// The fetch installed via Submit; once applied, the key serves as a hit.
	e.Flush()
	v, _, hit, err = tiered.GetOrLoad(context.Background(), 42)
	if err != nil || !hit {
		t.Fatalf("after install: hit=%v err=%v", hit, err)
	}
	if want := uint64(42) ^ backing.SynthSalt; v != want {
		t.Fatalf("hit value = %d, want %d", v, want)
	}
	if _, _, _, err := tiered.GetOrLoad(context.Background(), 99_999); !errors.Is(err, backing.ErrNotFound) {
		t.Fatalf("absent key err = %v, want ErrNotFound", err)
	}
}

// TestTieredBlackoutGracefulDegradation is the acceptance-criteria fault
// test: with the backing store fully dark, resident keys keep serving
// correct, allocation-free hits while misses fail fast within the loader's
// budget — the engine-as-switch never degrades with its backend.
func TestTieredBlackoutGracefulDegradation(t *testing.T) {
	e := newTestEngine(t, Config{})
	faulty := backing.NewFaulty(backing.NewMapStore().Preload(10_000), backing.FaultyConfig{Seed: 3})
	const (
		attempts   = 3
		timeout    = 50 * time.Millisecond
		backoffCap = 20 * time.Millisecond
	)
	tiered := NewTiered(e, faulty, backing.LoaderConfig{
		Attempts: attempts, Timeout: timeout,
		Backoff: 2 * time.Millisecond, BackoffCap: backoffCap, Seed: 3,
	})

	// Warm the cache synchronously, then find keys that stayed resident.
	for k := uint64(1); k <= 2000; k++ {
		e.Apply(Op{Key: k, Value: k ^ backing.SynthSalt, Token: policy.NoToken})
	}
	var resident []uint64
	for k := uint64(1); k <= 2000 && len(resident) < 16; k++ {
		if _, _, ok := e.Query(k); ok {
			resident = append(resident, k)
		}
	}
	if len(resident) == 0 {
		t.Fatal("no keys resident after warmup")
	}

	faulty.SetBlackout(true)

	// Hits: correct and allocation-free, store untouched.
	for _, k := range resident {
		v, _, hit, err := tiered.GetOrLoad(context.Background(), k)
		if err != nil || !hit || v != k^backing.SynthSalt {
			t.Fatalf("blackout hit on %d: v=%d hit=%v err=%v", k, v, hit, err)
		}
	}
	k := resident[0]
	if allocs := testing.AllocsPerRun(100, func() {
		if _, _, ok := e.Query(k); !ok {
			t.Error("resident key vanished")
		}
	}); allocs != 0 {
		t.Errorf("hit Query allocates %.1f objects/op during blackout, want 0", allocs)
	}

	// Misses: fail with the transient error, within the retry budget's bound.
	start := time.Now()
	_, _, _, err := tiered.GetOrLoad(context.Background(), 999_999_999)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("miss succeeded against a dark store")
	}
	if !errors.Is(err, backing.ErrUnavailable) {
		t.Fatalf("miss err = %v, want wrapped ErrUnavailable", err)
	}
	if bound := attempts*timeout + attempts*backoffCap + 100*time.Millisecond; elapsed > bound {
		t.Errorf("blackout miss took %v, want < %v", elapsed, bound)
	}

	// Recovery: lifting the blackout restores the miss path.
	faulty.SetBlackout(false)
	if _, _, _, err := tiered.GetOrLoad(context.Background(), 3_333); err != nil {
		t.Fatalf("post-blackout miss: %v", err)
	}
}

// TestTieredWriteBehindDrain wires the eviction hook to a write-behind
// drainer and checks evicted pairs land in the store.
func TestTieredWriteBehindDrain(t *testing.T) {
	store := backing.NewMapStore()
	wb := backing.NewWriteBehind(store, backing.WriteBehindConfig{QueueDepth: 4096})
	defer wb.Close()

	e := newTestEngine(t, Config{Shards: 2, Block: true, OnEvict: wb.OnEvict})
	sub := e.NewSubmitter()
	// Far more keys than capacity: most inserts evict a predecessor.
	const keys = 50_000
	for k := uint64(1); k <= keys; k++ {
		sub.Submit(Op{Key: k, Value: k * 3, Token: policy.NoToken})
	}
	sub.Flush()
	e.Flush()
	wb.Flush()

	offered, drained, _, failures := wb.Stats()
	if offered == 0 {
		t.Fatal("no evictions reached the write-behind queue")
	}
	if drained != offered || failures != 0 {
		t.Fatalf("drained %d of %d offered (%d failures)", drained, offered, failures)
	}
	// Every drained pair must carry the value it was cached with.
	checked := 0
	for k := uint64(1); k <= keys && checked < 1000; k++ {
		v, err := store.Get(context.Background(), k)
		if errors.Is(err, backing.ErrNotFound) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if v != k*3 {
			t.Fatalf("store[%d] = %d, want %d", k, v, k*3)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no evicted pairs found in the store")
	}
}

// TestTieredMissStormCoalesces: the engine-level view of the singleflight
// acceptance test — a same-key storm through GetOrLoad costs few fetches and
// installs the key exactly once per fetch.
func TestTieredMissStormCoalesces(t *testing.T) {
	e := newTestEngine(t, Config{})
	var fetches atomic.Uint64
	store := backing.FuncStore{GetFn: func(ctx context.Context, key uint64) (uint64, error) {
		fetches.Add(1)
		time.Sleep(10 * time.Millisecond)
		return key ^ backing.SynthSalt, nil
	}}
	tiered := NewTiered(e, store, backing.LoaderConfig{})

	const goroutines = 100
	var wg sync.WaitGroup
	var bad atomic.Uint64
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, _, err := tiered.GetOrLoad(context.Background(), 5)
			if err != nil || v != uint64(5)^backing.SynthSalt {
				bad.Add(1)
			}
		}()
	}
	wg.Wait()
	if n := bad.Load(); n != 0 {
		t.Fatalf("%d/%d storm calls failed", n, goroutines)
	}
	if f := fetches.Load(); f > goroutines/10 {
		t.Errorf("storm cost %d fetches, want ≤ %d", f, goroutines/10)
	}
	e.Flush()
	if _, _, ok := e.Query(5); !ok {
		t.Error("stormed key not installed")
	}
}
