package engine

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/p4lru/p4lru/internal/policy"
)

// TestSubmitRacesClose pins the shutdown contract: producers hammering
// Submit and Submitter.Flush while Close runs concurrently must never panic
// on the closed queues, and every op must be accounted — applied by a writer
// or counted in Dropped(). Run with -race via `make race`.
func TestSubmitRacesClose(t *testing.T) {
	for _, mode := range []struct {
		name  string
		block bool
	}{
		{"drop", false},
		{"block", true},
	} {
		t.Run(mode.name, func(t *testing.T) {
			e, err := NewFromSpec(
				policy.Spec{Kind: policy.KindP4LRU3, MemBytes: 64 * 1024, Seed: 1},
				Config{Shards: 4, QueueDepth: 8, BatchSize: 16, Block: mode.block},
			)
			if err != nil {
				t.Fatal(err)
			}

			const (
				producers   = 8
				perProducer = 10_000
			)
			var produced atomic.Uint64
			var wg sync.WaitGroup
			start := make(chan struct{})
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					sub := e.NewSubmitter()
					<-start
					for i := 0; i < perProducer; i++ {
						sub.Submit(Op{Key: uint64(p*perProducer + i), Value: 1, Token: policy.NoToken})
						produced.Add(1)
					}
					sub.Flush()
				}(p)
			}
			// Half the producers also use the single-op path concurrently.
			for p := 0; p < producers/2; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					<-start
					for i := 0; i < perProducer; i++ {
						e.Submit(Op{Key: uint64(1<<32 + p*perProducer + i), Value: 2, Token: policy.NoToken})
						produced.Add(1)
					}
				}(p)
			}

			close(start)
			time.Sleep(time.Millisecond) // let the queues heat up mid-stream
			e.Close()
			wg.Wait()
			e.Close() // idempotent

			var applied uint64
			for _, s := range e.Stats() {
				applied += s.Applied
			}
			if got, want := applied+e.Dropped(), produced.Load(); got != want {
				t.Errorf("applied %d + dropped %d = %d, want %d produced",
					applied, e.Dropped(), got, want)
			}
			// Late ops must be rejected, not silently accepted.
			if e.Submit(Op{Key: 1, Value: 1, Token: policy.NoToken}) {
				t.Error("Submit accepted after Close")
			}
		})
	}
}
