package engine

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/p4lru/p4lru/internal/policy"
)

// snapshotEdgeEngine builds a small engine holding a known key set.
func snapshotEdgeEngine(t *testing.T, keys int) *Engine {
	t.Helper()
	e, err := NewFromSpec(
		policy.Spec{Kind: policy.KindIdeal, MemBytes: 1 << 20, Seed: 7},
		Config{Shards: 2, Block: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	for k := 1; k <= keys; k++ {
		e.Apply(Op{Key: uint64(k), Value: uint64(k) * 11})
	}
	return e
}

// TestSnapshotChecksumMismatchRejected: a single flipped pair byte must fail
// the trailer checksum — the restore returns an error instead of silently
// serving a corrupted image.
func TestSnapshotChecksumMismatchRejected(t *testing.T) {
	src := snapshotEdgeEngine(t, 500)
	var buf bytes.Buffer
	if err := src.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	img := buf.Bytes()
	// Flip one byte inside the first chunk's pair data (header is 16 bytes,
	// chunk count 4 more; offset 25 lands mid-pair regardless of layout).
	img[25] ^= 0xff
	dst := snapshotEdgeEngine(t, 0)
	if _, err := dst.RestoreSnapshot(bytes.NewReader(img)); err == nil {
		t.Fatal("restore of a corrupted image succeeded; want checksum mismatch")
	} else if !strings.Contains(err.Error(), "checksum") && !strings.Contains(err.Error(), "count") {
		t.Fatalf("corrupted image rejected with unrelated error: %v", err)
	}
}

// TestSnapshotTruncatedMidRecord: cutting the stream inside a pair record
// (and at several other offsets) must error, never hang or succeed.
func TestSnapshotTruncatedMidRecord(t *testing.T) {
	src := snapshotEdgeEngine(t, 300)
	var buf bytes.Buffer
	if err := src.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	img := buf.Bytes()
	// Offsets: mid-header, mid-chunk-count, mid-pair, and just before the
	// trailer — every truncation class the decoder can meet.
	for _, cut := range []int{3, 17, 29, len(img) - 5} {
		if cut >= len(img) {
			continue
		}
		dst := snapshotEdgeEngine(t, 0)
		if _, err := dst.RestoreSnapshot(bytes.NewReader(img[:cut])); err == nil {
			t.Fatalf("restore of image truncated at %d/%d bytes succeeded", cut, len(img))
		}
	}
}

// TestSnapshotBadMagicAndVersion: foreign bytes and future versions are
// rejected before any pair is applied.
func TestSnapshotBadMagicAndVersion(t *testing.T) {
	dst := snapshotEdgeEngine(t, 0)
	if _, err := dst.RestoreSnapshot(strings.NewReader("this is not a snapshot at all")); err == nil {
		t.Fatal("restore of garbage succeeded")
	}
	src := snapshotEdgeEngine(t, 10)
	var buf bytes.Buffer
	if err := src.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	img := buf.Bytes()
	img[8] = 0x7f // version word
	if _, err := dst.RestoreSnapshot(bytes.NewReader(img)); err == nil {
		t.Fatal("restore of a future-version image succeeded")
	}
	if n := dst.Len(); n != 0 {
		t.Fatalf("rejected restores still installed %d pairs", n)
	}
}

// TestRestoreIfAbsentRacingWriter: RestoreSnapshotIfAbsent runs while a
// writer hammers the same keys with fresh values. The contract under race:
// every snapshot key ends up resident, and every key's final value is either
// the writer's (fresh write won, or landed after the restore skipped/installed
// it and overwrote) or the snapshot's (key was absent at check time and no
// later write hit it) — never a third value, never a lost key. With the
// writer quiesced *before* the restore finishes, keys the writer touched
// must keep the writer's value whenever the write preceded the restore's
// residency check — we assert the weaker, schedule-independent form: final
// value ∈ {writer value, snapshot value} and keys never written retain the
// snapshot value exactly.
func TestRestoreIfAbsentRacingWriter(t *testing.T) {
	const keys = 2000
	src := snapshotEdgeEngine(t, keys)
	var buf bytes.Buffer
	if err := src.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	dst := snapshotEdgeEngine(t, 0)
	snapVal := func(k uint64) uint64 { return k * 11 }
	freshVal := func(k uint64) uint64 { return k*11 + 1_000_000 }

	// Writer races the restore over the even keys only, so odd keys pin the
	// no-contention behavior in the same run.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		sub := dst.NewSubmitter()
		for {
			select {
			case <-stop:
				sub.Flush()
				return
			default:
			}
			for k := uint64(2); k <= keys; k += 2 {
				sub.Submit(Op{Key: k, Value: freshVal(k)})
			}
			sub.Flush()
		}
	}()
	time.Sleep(time.Millisecond) // let the writer land a first pass
	if _, err := dst.RestoreSnapshotIfAbsent(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("RestoreSnapshotIfAbsent racing a writer: %v", err)
	}
	close(stop)
	wg.Wait()
	if err := dst.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	for k := uint64(1); k <= keys; k++ {
		v, _, ok := dst.Query(k)
		if !ok {
			t.Fatalf("key %d lost across the racing restore", k)
		}
		if k%2 == 1 {
			if v != snapVal(k) {
				t.Fatalf("unwritten key %d = %d, want snapshot value %d", k, v, snapVal(k))
			}
			continue
		}
		if v != snapVal(k) && v != freshVal(k) {
			t.Fatalf("raced key %d = %d, want one of {%d, %d}", k, v, snapVal(k), freshVal(k))
		}
	}
}

// TestSnapshotWriterSynthesized: an image built pair-by-pair through the
// exported SnapshotWriter restores exactly like an engine-produced one —
// the contract the cluster hint log's replay stream depends on.
func TestSnapshotWriterSynthesized(t *testing.T) {
	var buf bytes.Buffer
	sw, err := NewSnapshotWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000 // crosses a chunk boundary
	for k := uint64(1); k <= n; k++ {
		if err := sw.Add(k, k^0xf00d); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	dst := snapshotEdgeEngine(t, 0)
	restored, err := dst.RestoreSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("restore of synthesized image: %v", err)
	}
	if restored != n {
		t.Fatalf("restored %d pairs, want %d", restored, n)
	}
	for k := uint64(1); k <= n; k++ {
		if v, _, ok := dst.Query(k); !ok || v != k^0xf00d {
			t.Fatalf("key %d = (%d, %v) after synthesized restore", k, v, ok)
		}
	}
	// If-absent over the same image against the already-filled engine
	// installs nothing.
	if again, err := dst.RestoreSnapshotIfAbsent(bytes.NewReader(buf.Bytes())); err != nil || again != 0 {
		t.Fatalf("if-absent re-restore = (%d, %v), want (0, nil)", again, err)
	}
}
