// Package quantile implements the P² (piecewise-parabolic) streaming
// quantile estimator of Jain & Chlamtac (1985): constant memory, one pass,
// no stored samples. The simulators use it to report median and tail
// latencies without retaining millions of samples.
package quantile

import (
	"fmt"
	"sort"
)

// Estimator tracks a single quantile q of a stream.
type Estimator struct {
	q       float64
	n       int
	heights [5]float64 // marker heights
	pos     [5]float64 // marker positions (1-based)
	want    [5]float64 // desired positions
	incr    [5]float64 // desired-position increments
	initial []float64  // first five observations
}

// New returns an estimator for quantile q ∈ (0, 1).
func New(q float64) *Estimator {
	if q <= 0 || q >= 1 {
		panic(fmt.Sprintf("quantile: q %v out of (0,1)", q))
	}
	e := &Estimator{q: q, initial: make([]float64, 0, 5)}
	e.want = [5]float64{1, 1 + 2*q, 1 + 4*q, 3 + 2*q, 5}
	e.incr = [5]float64{0, q / 2, q, (1 + q) / 2, 1}
	return e
}

// Count returns the number of observations.
func (e *Estimator) Count() int { return e.n }

// Add feeds one observation.
func (e *Estimator) Add(x float64) {
	e.n++
	if len(e.initial) < 5 {
		e.initial = append(e.initial, x)
		if len(e.initial) == 5 {
			sort.Float64s(e.initial)
			for i := 0; i < 5; i++ {
				e.heights[i] = e.initial[i]
				e.pos[i] = float64(i + 1)
			}
		}
		return
	}

	// Find the cell k containing x and clamp extremes.
	var k int
	switch {
	case x < e.heights[0]:
		e.heights[0] = x
		k = 0
	case x >= e.heights[4]:
		e.heights[4] = x
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if x < e.heights[k+1] {
				break
			}
		}
	}

	for i := k + 1; i < 5; i++ {
		e.pos[i]++
	}
	for i := 0; i < 5; i++ {
		e.want[i] += e.incr[i]
	}

	// Adjust the three interior markers.
	for i := 1; i <= 3; i++ {
		d := e.want[i] - e.pos[i]
		if (d >= 1 && e.pos[i+1]-e.pos[i] > 1) || (d <= -1 && e.pos[i-1]-e.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1.0
			}
			// Piecewise-parabolic prediction.
			h := e.parabolic(i, sign)
			if e.heights[i-1] < h && h < e.heights[i+1] {
				e.heights[i] = h
			} else {
				e.heights[i] = e.linear(i, sign)
			}
			e.pos[i] += sign
		}
	}
}

func (e *Estimator) parabolic(i int, d float64) float64 {
	return e.heights[i] + d/(e.pos[i+1]-e.pos[i-1])*
		((e.pos[i]-e.pos[i-1]+d)*(e.heights[i+1]-e.heights[i])/(e.pos[i+1]-e.pos[i])+
			(e.pos[i+1]-e.pos[i]-d)*(e.heights[i]-e.heights[i-1])/(e.pos[i]-e.pos[i-1]))
}

func (e *Estimator) linear(i int, d float64) float64 {
	j := i + int(d)
	return e.heights[i] + d*(e.heights[j]-e.heights[i])/(e.pos[j]-e.pos[i])
}

// Value returns the current estimate. With fewer than five observations it
// falls back to the exact order statistic of what was seen (0 when empty).
func (e *Estimator) Value() float64 {
	if e.n == 0 {
		return 0
	}
	if len(e.initial) < 5 {
		s := append([]float64(nil), e.initial...)
		sort.Float64s(s)
		idx := int(e.q * float64(len(s)))
		if idx >= len(s) {
			idx = len(s) - 1
		}
		return s[idx]
	}
	return e.heights[2]
}
