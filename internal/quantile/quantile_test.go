package quantile

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func exact(data []float64, q float64) float64 {
	s := append([]float64(nil), data...)
	sort.Float64s(s)
	idx := int(q * float64(len(s)))
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

func TestEmptyAndSmall(t *testing.T) {
	e := New(0.5)
	if e.Value() != 0 || e.Count() != 0 {
		t.Errorf("empty: value=%v count=%d", e.Value(), e.Count())
	}
	e.Add(3)
	e.Add(1)
	if e.Count() != 2 {
		t.Errorf("count = %d", e.Count())
	}
	if v := e.Value(); v != 3 { // exact order statistic of {1,3} at q=0.5
		t.Errorf("small-sample median = %v", v)
	}
}

func TestPanicsOnBadQ(t *testing.T) {
	for _, q := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v) did not panic", q)
				}
			}()
			New(q)
		}()
	}
}

func TestUniformAccuracy(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, q := range []float64{0.5, 0.9, 0.99} {
		e := New(q)
		data := make([]float64, 0, 100000)
		for i := 0; i < 100000; i++ {
			x := r.Float64() * 1000
			e.Add(x)
			data = append(data, x)
		}
		got, want := e.Value(), exact(data, q)
		if math.Abs(got-want) > 10 { // 1% of the range
			t.Errorf("q=%v: estimate %v, exact %v", q, got, want)
		}
	}
}

func TestSkewedAccuracy(t *testing.T) {
	// Exponential-ish latencies: heavy right tail.
	r := rand.New(rand.NewSource(2))
	e50, e99 := New(0.5), New(0.99)
	data := make([]float64, 0, 200000)
	for i := 0; i < 200000; i++ {
		x := r.ExpFloat64() * 100
		e50.Add(x)
		e99.Add(x)
		data = append(data, x)
	}
	w50, w99 := exact(data, 0.5), exact(data, 0.99)
	if math.Abs(e50.Value()-w50)/w50 > 0.05 {
		t.Errorf("p50: %v vs exact %v", e50.Value(), w50)
	}
	if math.Abs(e99.Value()-w99)/w99 > 0.10 {
		t.Errorf("p99: %v vs exact %v", e99.Value(), w99)
	}
	if e99.Value() <= e50.Value() {
		t.Error("p99 not above p50")
	}
}

func TestSortedInputs(t *testing.T) {
	// Monotone streams are a classic P² stress case.
	for name, gen := range map[string]func(i int) float64{
		"ascending":  func(i int) float64 { return float64(i) },
		"descending": func(i int) float64 { return float64(100000 - i) },
	} {
		e := New(0.9)
		for i := 0; i < 100000; i++ {
			e.Add(gen(i))
		}
		got := e.Value()
		if got < 80000 || got > 100000 {
			t.Errorf("%s: p90 = %v, want ≈90000", name, got)
		}
	}
}

func TestConstantStream(t *testing.T) {
	e := New(0.99)
	for i := 0; i < 1000; i++ {
		e.Add(42)
	}
	if e.Value() != 42 {
		t.Errorf("constant stream p99 = %v", e.Value())
	}
}

func BenchmarkAdd(b *testing.B) {
	e := New(0.99)
	r := rand.New(rand.NewSource(1))
	xs := make([]float64, 4096)
	for i := range xs {
		xs[i] = r.ExpFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Add(xs[i&4095])
	}
}
